"""One function per paper table/figure — the reproduction entry points.

Each function takes (or builds) a simulated world, runs the analyst
pipeline, and returns a result object carrying both the data and a
rendered, paper-shaped report.  The benchmarks in ``benchmarks/`` and
the CLI both call these, so there is exactly one implementation of each
experiment.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from .analysis.peeling import summarize_peels_by_entity
from .chain.model import COIN, format_btc
from .core.fp_estimation import FPEstimate
from .core.heuristic1 import h1_statistics
from .core.heuristic2 import Heuristic2Config
from .core.supercluster import diagnose_superclusters
from .metrics.evaluation import compare_clusterings, pairwise_scores
from .pipeline import AnalystView
from .core.incremental import ClusterSnapshot
from .reporting import (
    render_figure2,
    render_fp_ladder,
    render_query_workload,
    render_table,
    render_table2,
    render_table3,
    render_timeseries,
)
from .service.queries import Query
from .service.service import ForensicsService
from .simulation import scenarios
from .simulation.economy import World

# ----------------------------------------------------------------------
# Table 1 — the re-identification attack roster
# ----------------------------------------------------------------------


@dataclass
class Table1Result:
    services_by_category: dict[str, list[str]]
    transactions_made: int
    services_engaged: int
    addresses_tagged: int
    report: str


def run_table1(world: World | None = None, *, seed: int = 0) -> Table1Result:
    """§3.1/Table 1: engage every service, count transactions and tags."""
    world = world or scenarios.default_economy(seed=seed)
    attack = world.extras["attack"]
    roster = world.extras["roster"]
    by_category = {
        category: sorted(actor.name for actor in actors)
        for category, actors in roster.items()
    }
    rows = []
    for category, names in by_category.items():
        engaged = sum(1 for n in names if n in attack.stats.services_engaged)
        rows.append([category, len(names), engaged])
    report = render_table(
        ["category", "services", "engaged"],
        rows,
        title="Table 1: services interacted with (by category)",
    )
    report += (
        f"\ntransactions made: {attack.stats.transactions_made}"
        f"  (paper: 344)\naddresses tagged: {attack.tags.address_count}"
        f"  (paper: 1,070)"
    )
    return Table1Result(
        services_by_category=by_category,
        transactions_made=attack.stats.transactions_made,
        services_engaged=len(attack.stats.services_engaged),
        addresses_tagged=attack.tags.address_count,
        report=report,
    )


# ----------------------------------------------------------------------
# §4 — clustering accounting (H1 counts, refined H2, naming coverage)
# ----------------------------------------------------------------------


@dataclass
class Section4Result:
    h1_clusters: int
    h1_sinks: int
    h1_user_upper_bound: int
    h2_clusters: int
    h2_clusters_after_tag_collapse: int
    change_addresses_identified: int
    named_clusters: int
    named_addresses: int
    hand_tagged_addresses: int
    amplification: float
    mtgox_cluster_count: int
    h1_scores: object
    h2_scores: object
    report: str


def run_section4(world: World | None = None, *, seed: int = 0) -> Section4Result:
    """§4.1–4.2 numbers: cluster counts, coverage, amplification."""
    world = world or scenarios.default_economy(seed=seed)
    view = AnalystView.build(world)
    stats = h1_statistics(world.index, view.clustering_h1.uf)
    clustering = view.clustering
    naming = view.naming
    naming_report = naming.report()
    tag_map = view.tags.as_mapping()
    collapsed = clustering.effective_cluster_count(tag_map)
    comparison = compare_clusterings(
        view.clustering_h1,
        clustering,
        world.ground_truth,
        label_a="H1",
        label_b="H1+H2",
    )
    mtgox_clusters = len(naming.clusters_named("Mt Gox"))
    rows = [
        ["H1 co-spend clusters", stats.spender_clusters, "5.5M"],
        ["sink addresses", stats.sink_addresses, "—"],
        ["max users upper bound", stats.max_users_upper_bound, "6,595,564"],
        ["H1+H2 clusters", clustering.cluster_count, "3,384,179"],
        ["after tag collapse", collapsed, "3,383,904"],
        ["change addresses identified",
         len(clustering.h2_result.labels) if clustering.h2_result else 0,
         "3,540,831"],
        ["named clusters", naming_report.named_cluster_count, "2,197"],
        ["named addresses", naming_report.named_address_count, "1.8M"],
        ["hand-tagged addresses", naming_report.hand_tagged_address_count, "1,070"],
        ["amplification", f"×{naming_report.amplification:.0f}", "×1,600"],
        ["Mt Gox clusters named", mtgox_clusters, "20"],
        ["H1 pairwise recall", f"{comparison.scores_a.recall:.3f}", "—"],
        ["H1+H2 pairwise recall", f"{comparison.scores_b.recall:.3f}", "—"],
        ["H1 pairwise precision", f"{comparison.scores_a.precision:.3f}", "—"],
        ["H1+H2 pairwise precision", f"{comparison.scores_b.precision:.3f}", "—"],
    ]
    report = render_table(
        ["quantity", "measured", "paper"], rows, title="§4 clustering accounting"
    )
    return Section4Result(
        h1_clusters=stats.spender_clusters,
        h1_sinks=stats.sink_addresses,
        h1_user_upper_bound=stats.max_users_upper_bound,
        h2_clusters=clustering.cluster_count,
        h2_clusters_after_tag_collapse=collapsed,
        change_addresses_identified=(
            len(clustering.h2_result.labels) if clustering.h2_result else 0
        ),
        named_clusters=naming_report.named_cluster_count,
        named_addresses=naming_report.named_address_count,
        hand_tagged_addresses=naming_report.hand_tagged_address_count,
        amplification=naming_report.amplification,
        mtgox_cluster_count=mtgox_clusters,
        h1_scores=comparison.scores_a,
        h2_scores=comparison.scores_b,
        report=report,
    )


# ----------------------------------------------------------------------
# §4.2 — the false-positive refinement ladder + super-cluster check
# ----------------------------------------------------------------------


@dataclass
class FPLadderResult:
    estimates: list[FPEstimate]
    naive_supercluster_entities: int
    refined_supercluster_entities: int
    naive_merges_majors: bool
    refined_merges_majors: bool
    report: str


MAJOR_SERVICES = ("Mt Gox", "Instawallet", "Bitpay", "Silk Road")
"""The four entities the paper's super-cluster wrongly merged."""


def run_fp_ladder(world: World | None = None, *, seed: int = 0) -> FPLadderResult:
    """§4.2: the 13% → 1% → 0.28% → 0.17% ladder + super-cluster test."""
    world = world or scenarios.default_economy(seed=seed)
    view = AnalystView.build(world)
    estimates = view.fp_estimator().refinement_ladder()
    tag_map = view.tags.as_mapping()
    naive_view = AnalystView.build(world, h2_config=Heuristic2Config.naive())
    naive_report = diagnose_superclusters(naive_view.clustering, tag_map)
    refined_report = diagnose_superclusters(view.clustering, tag_map)
    naive_merges = _merges_any_majors(naive_report)
    refined_merges = _merges_any_majors(refined_report)
    report = render_fp_ladder(estimates)
    report += "\n" + render_table(
        ["clustering", "entities merged somewhere", "merges majors?"],
        [
            ["naive H2", naive_report.merged_entity_count, naive_merges],
            ["refined H2", refined_report.merged_entity_count, refined_merges],
        ],
        title="super-cluster diagnosis",
    )
    return FPLadderResult(
        estimates=estimates,
        naive_supercluster_entities=naive_report.merged_entity_count,
        refined_supercluster_entities=refined_report.merged_entity_count,
        naive_merges_majors=naive_merges,
        refined_merges_majors=refined_merges,
        report=report,
    )


def _merges_any_majors(report) -> bool:
    majors = set(MAJOR_SERVICES)
    return any(
        len(majors & set(info.entities)) >= 2 for info in report.merged_clusters
    )


# ----------------------------------------------------------------------
# Cluster-growth time series — the incremental engine's headline workload
# ----------------------------------------------------------------------


@dataclass
class TimeSeriesResult:
    points: list[ClusterSnapshot]
    final_clusters: int
    final_h1_clusters: int
    peak_active_labels: int
    report: str


def run_cluster_timeseries(
    world: World | None = None, *, seed: int = 0
) -> TimeSeriesResult:
    """Cluster counts at every height of the chain, in one streaming pass.

    This is the temporal view behind §4's narratives (how H2 collapses
    the partition as change links accrue, how the wait rule retires
    labels): the incremental engine clusters block by block and the
    series is read off its checkpoints — no per-height re-clustering.
    """
    world = world or scenarios.default_economy(seed=seed)
    view = AnalystView.build(world)
    points = view.incremental.cluster_count_series()
    final = points[-1] if points else None
    return TimeSeriesResult(
        points=points,
        final_clusters=final.clusters if final else 0,
        final_h1_clusters=final.h1_clusters if final else 0,
        peak_active_labels=max((p.active_labels for p in points), default=0),
        report=render_timeseries(points),
    )


# ----------------------------------------------------------------------
# Query workload — the forensics service's headline scenario
# ----------------------------------------------------------------------


WORKLOAD_KIND_WEIGHTS: dict[str, float] = {
    "cluster_of": 28.0,
    "balance_of": 24.0,
    "cluster_balance": 12.0,
    "cluster_profile": 14.0,
    "top_clusters": 8.0,
    "trace_taint": 14.0,
}
"""Default query mix: mostly point lookups (the interactive forensics
pattern — "whose address is this, what does it hold"), a steady trickle
of cluster rollups, and periodic taint checks on watched thefts."""


def generate_query_workload(
    service: ForensicsService, *, n_queries: int = 200, seed: int = 0
) -> list[Query]:
    """A deterministic mixed query stream against one service.

    Addresses are drawn uniformly from the chain's interner (so the mix
    contains hot and cold clusters alike); taint queries cycle over the
    service's watched cases and are redistributed to the other kinds
    when nothing is watched.
    """
    rng = random.Random(seed)
    interner = service.index.interner
    if len(interner) == 0:
        raise ValueError("cannot build a workload against an empty chain")
    labels = service.taint.labels
    weights = dict(WORKLOAD_KIND_WEIGHTS)
    if not labels:
        weights.pop("trace_taint")
    kinds = list(weights)
    population = rng.choices(
        kinds, weights=[weights[k] for k in kinds], k=n_queries
    )
    queries: list[Query] = []
    for kind in population:
        if kind == "trace_taint":
            queries.append(Query(kind, (rng.choice(labels),)))
        elif kind == "top_clusters":
            queries.append(
                Query(kind, (rng.choice((5, 10, 20)), rng.choice(
                    ("size", "balance", "activity")
                )))
            )
        else:
            address = interner.address_of(rng.randrange(len(interner)))
            queries.append(Query(kind, (address,)))
    return queries


@dataclass
class QueryWorkloadResult:
    queries: list[Query]
    kind_counts: dict[str, int]
    first_pass_seconds: float
    repeat_pass_seconds: float
    cache_stats: dict
    service_stats: dict
    report: str


def run_query_workload(
    world: World | None = None,
    *,
    seed: int = 0,
    n_queries: int = 200,
    repeats: int = 1,
    service: ForensicsService | None = None,
) -> QueryWorkloadResult:
    """Serve a mixed forensics workload from warm materialized views.

    Builds (or reuses) a :class:`~repro.service.service.ForensicsService`
    over the world, generates a ``n_queries``-strong mixed stream, and
    answers it twice: the first pass populates the height-keyed memo
    (views are already warm — they streamed during ingestion), the
    repeat passes measure pure cache service.  This is the
    ``repro serve`` CLI's engine and the benchmark's workload source.
    """
    repeats = max(1, repeats)  # a repeat pass is always timed and reported
    if service is None:
        world = world or scenarios.default_economy(seed=seed)
        service = ForensicsService.from_world(world)
    if not service.taint.labels:
        watch_synthetic_thefts(service)
    queries = generate_query_workload(service, n_queries=n_queries, seed=seed)
    start = time.perf_counter()
    service.answer_many(queries)
    first_pass = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(repeats):
        service.answer_many(queries)
    repeat_pass = (time.perf_counter() - start) / repeats
    kind_counts: dict[str, int] = {}
    for query in queries:
        kind_counts[query.kind] = kind_counts.get(query.kind, 0) + 1
    stats = service.stats()
    result = QueryWorkloadResult(
        queries=queries,
        kind_counts=kind_counts,
        first_pass_seconds=first_pass,
        repeat_pass_seconds=repeat_pass,
        cache_stats=service.cache.stats(),
        service_stats=stats,
        report="",
    )
    result.report = render_query_workload(result)
    return result


@dataclass
class WarmServiceResult:
    """A service stood up against a durable ``--state-dir``."""

    service: ForensicsService
    store: "StateStore"
    cold: bool
    snapshot_height: int | None
    tail_blocks: int
    seconds: float
    report: str

    def checkpoint(self) -> None:
        """Snapshot the service's current state (the shutdown hook the
        CLI calls after serving, so watched taint cases and tail growth
        survive the next restart)."""
        self.store.snapshot(self.service)


def instrumented_service(
    world: World,
    *,
    metrics,
    include_public_tags: bool = True,
    crawl_seed: int = 0,
    **kwargs,
) -> ForensicsService:
    """Build a service by *streaming* the world's blocks through a fresh
    index with ``metrics`` attached from block zero.

    :meth:`ForensicsService.from_world` attaches to the world's already
    built index, so its catch-up replay happens before any registry can
    observe it; this path rebuilds the chain through the instrumented
    ``add_block`` fan-out instead — every delta build, fold, and flush
    lands in the registry, and the end-to-end ingest wall clock is
    recorded as the ``ingest.wall_seconds`` gauge.  This is the engine
    behind ``repro serve --metrics-dump`` without ``--state-dir``.
    """
    from .chain.index import ChainIndex
    from .core.heuristic2 import dice_addresses_from_tags
    from .simulation.params import DICE_GAMES
    from .tagging.sources import PublicTagCrawl
    from .tagging.tags import TagStore

    attack = world.extras.get("attack")
    tags = attack.tags if attack is not None else TagStore()
    if include_public_tags:
        tags = tags.merged_with(PublicTagCrawl(world, seed=crawl_seed).crawl())
    kwargs.setdefault(
        "dice_addresses", dice_addresses_from_tags(tags, DICE_GAMES)
    )
    index = ChainIndex()
    service = ForensicsService(index, tags=tags, metrics=metrics, **kwargs)
    start = time.perf_counter()
    for block in world.blocks:
        index.add_block(block)
    metrics.gauge("ingest.wall_seconds").set(time.perf_counter() - start)
    metrics.gauge("ingest.blocks").set(len(world.blocks))
    for theft in world.extras.get("thefts", ()):
        service.watch_theft(theft.record.spec.name, theft.record.theft_txids)
    return service


def warm_service_blocks_only(
    state_dir, *, retain: int = 3, metrics=None, log=None
) -> WarmServiceResult:
    """Warm-start a service from a state directory alone — no world.

    ``warm_service`` re-simulates the whole scenario on every restart
    just to validate the block files and extend them if the world grew;
    on a pure serving restart that build dwarfs the restore it guards.
    This path trusts ``<state_dir>/blocks/blk*.dat`` outright: restore
    the newest snapshot, tail-replay the on-disk blocks past it, done.
    It therefore *requires* a prior full run — a state directory with no
    snapshot fails closed instead of silently standing up an untagged
    service (tags, taint cases, and views all live in the snapshot).
    """
    from pathlib import Path

    from .storage import StateStore, StorageError

    state_dir = Path(state_dir)
    blocks_dir = state_dir / "blocks"
    if not blocks_dir.is_dir():
        raise StorageError(
            f"no block files under {blocks_dir}; --blocks-only needs a "
            f"state directory written by a previous full run"
        )
    store = StateStore(state_dir / "snapshots", metrics=metrics, log=log)
    start = time.perf_counter()
    if store.latest() is None:
        raise StorageError(
            f"no snapshot under {state_dir}; --blocks-only can only "
            f"restore, not build — run once without it to write the "
            f"baseline snapshot"
        )
    warm = store.warm_start(blocks_dir)
    store.prune(retain)
    seconds = time.perf_counter() - start
    return WarmServiceResult(
        service=warm.service,
        store=store,
        cold=False,
        snapshot_height=warm.snapshot_height,
        tail_blocks=warm.tail_blocks,
        seconds=seconds,
        report=(
            f"blocks-only warm start: restored snapshot at height "
            f"{warm.snapshot_height} + {warm.tail_blocks} tail blocks -> "
            f"height {warm.service.height} ({seconds:.2f}s, world build "
            f"skipped)"
        ),
    )


def warm_service(
    world: World, state_dir, *, retain: int = 3, metrics=None, log=None
) -> WarmServiceResult:
    """Stand a service up against a durable state directory.

    Layout: ``<state_dir>/blocks/blk*.dat`` (the chain substrate —
    written from the world on first run, extended if the world has grown
    since) and ``<state_dir>/snapshots/snap-*`` (the
    :class:`~repro.storage.store.StateStore`).

    First run (no snapshot): builds the service cold from the world and
    captures a baseline snapshot.  Every later run restores the newest
    snapshot and tail-replays only the blocks past it — the transparent
    warm start behind ``repro serve --state-dir``.  A snapshot taken
    against a *different* chain than the current world fails closed.
    """
    from pathlib import Path

    from .chain.blockfile import BlockFileReader, BlockFileWriter
    from .storage import StateStore, StorageError

    state_dir = Path(state_dir)
    blocks_dir = state_dir / "blocks"
    store = StateStore(state_dir / "snapshots", metrics=metrics, log=log)
    start = time.perf_counter()
    on_disk = (
        BlockFileReader(blocks_dir).count_blocks() if blocks_dir.is_dir() else 0
    )
    if on_disk:
        # Guard BEFORE writing anything: appending this world's blocks
        # to a directory built from a different scenario/seed would
        # corrupt the substrate for both.  Headers chain by prev_hash,
        # so one match at the last common height pins the whole prefix.
        probe = min(on_disk, len(world.blocks)) - 1
        probed = next(
            iter(BlockFileReader(blocks_dir).iter_blocks(start_height=probe)),
            None,
        )
        if probed is None or probed.header != world.blocks[probe].header:
            raise StorageError(
                f"block files under {blocks_dir} come from a different "
                f"chain than this scenario/seed produces; point "
                f"--state-dir at a fresh directory"
            )
    if on_disk < len(world.blocks):
        writer = BlockFileWriter(blocks_dir, resume=True)
        for block in world.blocks[on_disk:]:
            writer.write_block(block)
    snapshot = store.latest()
    if snapshot is None:
        if metrics is not None and metrics.enabled:
            service = instrumented_service(world, metrics=metrics, log=log)
        else:
            service = ForensicsService.from_world(world, log=log)
        store.snapshot(service)
        seconds = time.perf_counter() - start
        result = WarmServiceResult(
            service=service,
            store=store,
            cold=True,
            snapshot_height=None,
            tail_blocks=0,
            seconds=seconds,
            report=(
                f"cold start: built height {service.height} from the world "
                f"and wrote a baseline snapshot ({seconds:.2f}s)"
            ),
        )
        return result
    warm = store.warm_start(blocks_dir)
    service = warm.service
    guard_height = min(warm.snapshot_height, len(world.blocks) - 1)
    if (
        guard_height >= 0
        and service.index.block_at(guard_height).header
        != world.blocks[guard_height].header
    ):
        raise StorageError(
            f"snapshot under {state_dir} was captured from a different "
            f"chain than this scenario/seed produces; point --state-dir "
            f"at a fresh directory"
        )
    store.prune(retain)
    seconds = time.perf_counter() - start
    return WarmServiceResult(
        service=service,
        store=store,
        cold=False,
        snapshot_height=warm.snapshot_height,
        tail_blocks=warm.tail_blocks,
        seconds=seconds,
        report=(
            f"warm start: restored snapshot at height {warm.snapshot_height}"
            f" + {warm.tail_blocks} tail blocks -> height {service.height} "
            f"({seconds:.2f}s)"
        ),
    )


def watch_synthetic_thefts(service: ForensicsService, *, cases: int = 3) -> None:
    """Watch a few mid-chain spends as stand-in theft cases
    (deterministic ``case-N`` labels) so worlds without scripted thefts
    still exercise ``trace_taint`` — and so a dumped workload replays
    against a freshly built service."""
    index = service.index
    height = max(0, index.height // 3)
    watched = 0
    for block in index.blocks[height:]:
        for tx in block.transactions:
            if tx.is_coinbase:
                continue
            watched += 1
            service.watch_theft(f"case-{watched}", [tx.txid])
            if watched >= cases:
                return


# ----------------------------------------------------------------------
# Table 2 — tracking bitcoins from the hoard
# ----------------------------------------------------------------------


@dataclass
class Table2Result:
    chain_summaries: list[dict]
    total_peels: int
    named_peels: int
    exchange_peels: int
    exchange_btc: float
    report: str


def run_table2(world: World | None = None, *, seed: int = 1) -> Table2Result:
    """§5/Table 2: follow the three dissolution chains for 100 hops."""
    world = world or scenarios.silkroad_world(seed=seed)
    view = AnalystView.build(world)
    hoard = world.extras["hoard"]
    tracker = view.peeling_tracker()
    exchange_entities = view.entities_in_category("exchanges") | (
        view.entities_in_category("fixed")
    )
    summaries = []
    total_peels = named_peels = exchange_peels = 0
    exchange_value = 0
    for head in hoard.state.chain_start_addresses:
        chain = tracker.follow_address(head, max_hops=100)
        # Recipients are named from the co-spend partition as of each
        # peel's spend height — the tip full partition retroactively
        # mislabels peels once a change-heuristic false positive bridges
        # a recipient's wallet into a service cluster.
        summary = summarize_peels_by_entity(
            chain,
            view.naming.name_of_address,
            name_of_peel=view.name_of_peel,
        )
        # Drop user names: the paper can only name services.
        summary = {
            name: s
            for name, s in summary.items()
            if not name.startswith("user") and name != "analyst"
        }
        summaries.append(summary)
        total_peels += len(chain.peels)
        named_peels += sum(s.peel_count for s in summary.values())
        for name, s in summary.items():
            if name in exchange_entities:
                exchange_peels += s.peel_count
                exchange_value += s.total_value
    report = render_table2(summaries)
    report += (
        f"\npeels followed: {total_peels} (paper: 300)"
        f"\npeels to named services: {named_peels}"
        f"\npeels to exchanges: {exchange_peels} (paper: 54/300)"
        f"\nBTC to exchanges: {format_btc(exchange_value)}"
    )
    return Table2Result(
        chain_summaries=summaries,
        total_peels=total_peels,
        named_peels=named_peels,
        exchange_peels=exchange_peels,
        exchange_btc=exchange_value / COIN,
        report=report,
    )


# ----------------------------------------------------------------------
# Table 3 — tracking thefts
# ----------------------------------------------------------------------


@dataclass
class Table3Result:
    rows: list[dict] = field(default_factory=list)
    grammar_matches: int = 0
    exchange_flag_matches: int = 0
    report: str = ""


def run_table3(world: World | None = None, *, seed: int = 2) -> Table3Result:
    """§5/Table 3: classify each theft's movement and exchange reach."""
    world = world or scenarios.theft_world(seed=seed)
    view = AnalystView.build(world)
    tracker = view.theft_tracker()
    exchange_entities = view.entities_in_category("exchanges") | (
        view.entities_in_category("fixed")
    )
    result = Table3Result()
    for theft in world.extras["thefts"]:
        record = theft.record
        analysis = tracker.track(record.theft_txids)
        reached = analysis.reached(exchange_entities)
        row = {
            "name": record.spec.name,
            "btc": f"{record.spec.paper_btc:,.0f}",
            "movement_paper": record.spec.movement,
            "movement_found": analysis.movement,
            "reached_exchanges": reached,
            "expected_reach": record.spec.reaches_exchanges,
            "exchange_btc": analysis.value_to(exchange_entities) / COIN,
            "dormant_btc": analysis.dormant_value / COIN,
        }
        result.rows.append(row)
        if analysis.movement == record.spec.movement:
            result.grammar_matches += 1
        if reached == record.spec.reaches_exchanges:
            result.exchange_flag_matches += 1
    result.report = render_table3(result.rows)
    result.report += (
        f"\nmovement grammar recovered exactly: "
        f"{result.grammar_matches}/{len(result.rows)}"
        f"\nexchange-reach flag correct: "
        f"{result.exchange_flag_matches}/{len(result.rows)}"
    )
    return result


# ----------------------------------------------------------------------
# Figure 2 — category balances over time
# ----------------------------------------------------------------------


@dataclass
class Figure2Result:
    series: object
    peaks: dict[str, float]
    report: str


def run_figure2(world: World | None = None, *, seed: int = 1) -> Figure2Result:
    """Figure 2: balance per category as % of active bitcoins.

    Peaks skip the first fifth of the window: with only a handful of
    active coins in existence, a single payment is a huge share of
    activity, which the paper's Dec-2010-onward window never exhibits.
    """
    world = world or scenarios.silkroad_world(seed=seed)
    view = AnalystView.build(world)
    series = view.balance_series(samples=80)
    peaks = {
        c: series.peak(c, skip_fraction=0.2) for c in series.by_category
    }
    return Figure2Result(
        series=series, peaks=peaks, report=render_figure2(series)
    )


# ----------------------------------------------------------------------
# Ablation — value of each H2 refinement rung
# ----------------------------------------------------------------------


@dataclass
class AblationResult:
    rows: list[dict]
    report: str


def run_ablation(world: World | None = None, *, seed: int = 0) -> AblationResult:
    """Sweep the H2 refinement toggles; score each against ground truth."""
    world = world or scenarios.default_economy(seed=seed)
    configs = [
        ("naive", Heuristic2Config.naive()),
        (
            "+dice",
            Heuristic2Config(
                dice_exception=True,
                wait_seconds=None,
                reject_reused_change=False,
                reject_prior_self_change=False,
            ),
        ),
        (
            "+wait-week",
            Heuristic2Config(
                dice_exception=True,
                reject_reused_change=False,
                reject_prior_self_change=False,
            ),
        ),
        (
            "+reject-reused",
            Heuristic2Config(
                dice_exception=True,
                reject_reused_change=True,
                reject_prior_self_change=False,
            ),
        ),
        ("refined (all)", Heuristic2Config.refined()),
    ]
    rows = []
    for name, config in configs:
        view = AnalystView.build(world, h2_config=config)
        clustering = view.clustering
        scores = pairwise_scores(clustering, world.ground_truth)
        labels = len(clustering.h2_result.labels) if clustering.h2_result else 0
        rows.append(
            {
                "config": name,
                "clusters": clustering.cluster_count,
                "change_labels": labels,
                "precision": scores.precision,
                "recall": scores.recall,
                "f1": scores.f1,
            }
        )
    report = render_table(
        ["config", "clusters", "labels", "precision", "recall", "F1"],
        [
            [
                r["config"],
                r["clusters"],
                r["change_labels"],
                f"{r['precision']:.4f}",
                f"{r['recall']:.4f}",
                f"{r['f1']:.4f}",
            ]
            for r in rows
        ],
        title="Ablation: H2 refinement rungs",
    )
    return AblationResult(rows=rows, report=report)

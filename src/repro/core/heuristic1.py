"""Heuristic 1: multi-input (co-spend) clustering.

    "If two (or more) addresses are used as inputs to the same
    transaction, then they are controlled by the same user."  (§4.1)

This exploits an inherent protocol property — spending requires the
signing keys of every input — and was already standard in prior work
[Androulaki et al., Reid & Harrigan, Ron & Shamir, blockparser].  It is
sound unless wallets do collaborative spends (CoinJoin postdates the
paper's window).

The paper reports 5.5 M co-spend clusters, and an upper bound of
6,595,564 "users" once sink addresses (which never spent and therefore
never co-spent) are counted as singletons.  :func:`h1_statistics`
produces the same accounting for a simulated chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain.index import ChainIndex
from .union_find import UnionFind


def cluster_h1(index: ChainIndex, *, as_of_height: int | None = None) -> UnionFind:
    """Run Heuristic 1 over the chain (optionally only up to a height).

    Every address that has ever appeared is added to the structure, so
    sink addresses show up as singleton components; co-spending unions
    input addresses transaction by transaction.
    """
    uf = UnionFind()
    for tx, location in index.iter_transactions():
        if as_of_height is not None and location.height > as_of_height:
            break
        for out in tx.outputs:
            address = out.address
            if address is not None:
                uf.add(address)
        if tx.is_coinbase:
            continue
        input_addresses = index.input_addresses(tx)
        if input_addresses:
            uf.union_all(input_addresses)
    return uf


@dataclass(frozen=True)
class H1Statistics:
    """The §4.1 accounting for a Heuristic 1 run."""

    total_addresses: int
    spender_clusters: int
    """Components among addresses that have spent at least once."""

    sink_addresses: int
    """Addresses that received but never spent (never clustered)."""

    max_users_upper_bound: int
    """Spender clusters + sink singletons — the paper's 'at most
    6,595,564 distinct users' bound."""

    largest_cluster_size: int


def h1_statistics(index: ChainIndex, uf: UnionFind | None = None) -> H1Statistics:
    """Compute the §4.1 cluster counts for a chain."""
    uf = uf if uf is not None else cluster_h1(index)
    sinks = set(index.sink_addresses())
    spender_roots = set()
    largest = 0
    for address in uf.iter_items():
        if address in sinks:
            continue
        root = uf.find(address)
        spender_roots.add(root)
        size = uf.size_of(address)
        if size > largest:
            largest = size
    return H1Statistics(
        total_addresses=len(uf),
        spender_clusters=len(spender_roots),
        sink_addresses=len(sinks),
        max_users_upper_bound=len(spender_roots) + len(sinks),
        largest_cluster_size=largest,
    )

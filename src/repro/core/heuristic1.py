"""Heuristic 1: multi-input (co-spend) clustering.

    "If two (or more) addresses are used as inputs to the same
    transaction, then they are controlled by the same user."  (§4.1)

This exploits an inherent protocol property — spending requires the
signing keys of every input — and was already standard in prior work
[Androulaki et al., Reid & Harrigan, Ron & Shamir, blockparser].  It is
sound unless wallets do collaborative spends (CoinJoin postdates the
paper's window).

The paper reports 5.5 M co-spend clusters, and an upper bound of
6,595,564 "users" once sink addresses (which never spent and therefore
never co-spent) are counted as singletons.  :func:`h1_statistics`
produces the same accounting for a simulated chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..chain.index import ChainIndex
from .union_find import IntUnionFind, UnionFind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .clustering import InternedPartition


def cluster_h1_ids(
    index: ChainIndex, *, as_of_height: int | None = None
) -> IntUnionFind:
    """Run Heuristic 1 over interned address ids (the hot path).

    Every address that has appeared by the cutoff exists in the
    structure (ids are dense and first-sight ordered, so the universe is
    exactly ``0..n_h-1``); sink addresses stay singleton components and
    co-spending unions input ids transaction by transaction.
    """
    uf = IntUnionFind()
    interner = index.interner
    id_of = interner.id_of
    for tx, location in index.iter_transactions():
        if as_of_height is not None and location.height > as_of_height:
            break
        for out in tx.outputs:
            address = out.address
            if address is not None:
                ident = id_of(address)
                if ident is not None and ident >= len(uf):
                    uf.ensure(ident + 1)
        if tx.is_coinbase:
            continue
        input_ids = index.input_address_ids(tx)
        if input_ids:
            uf.union_many(input_ids)
    return uf


def cluster_h1(
    index: ChainIndex, *, as_of_height: int | None = None
) -> "InternedPartition":
    """Heuristic 1 as an address-string-facing partition view."""
    from .clustering import InternedPartition

    return InternedPartition(
        cluster_h1_ids(index, as_of_height=as_of_height), index.interner
    )


@dataclass(frozen=True)
class H1Statistics:
    """The §4.1 accounting for a Heuristic 1 run."""

    total_addresses: int
    spender_clusters: int
    """Components among addresses that have spent at least once."""

    sink_addresses: int
    """Addresses that received but never spent (never clustered)."""

    max_users_upper_bound: int
    """Spender clusters + sink singletons — the paper's 'at most
    6,595,564 distinct users' bound."""

    largest_cluster_size: int


def h1_statistics(
    index: ChainIndex, uf: "UnionFind | InternedPartition | None" = None
) -> H1Statistics:
    """Compute the §4.1 cluster counts for a chain.

    ``uf`` may be any address-keyed partition (a generic
    :class:`UnionFind` or an :class:`~repro.core.clustering.InternedPartition`).
    """
    uf = uf if uf is not None else cluster_h1(index)
    sinks = set(index.sink_addresses())
    spender_roots = set()
    largest = 0
    for address in uf.iter_items():
        if address in sinks:
            continue
        root = uf.find(address)
        spender_roots.add(root)
        size = uf.size_of(address)
        if size > largest:
            largest = size
    return H1Statistics(
        total_addresses=len(uf),
        spender_clusters=len(spender_roots),
        sink_addresses=len(sinks),
        max_users_upper_bound=len(spender_roots) + len(sinks),
        largest_cluster_size=largest,
    )

"""Incremental streaming clustering with checkpointed time-travel (§4).

The paper's temporal analyses — the false-positive ladder, super-cluster
formation, Figure 2's series — all ask "what did the clustering look
like *as of height h*?".  Batch :class:`~repro.core.clustering.ClusteringEngine`
answers by re-running H1+H2 from block 0 per cutoff, making every
time-series experiment O(chain × heights).  This engine instead
subscribes to the index's shared per-block delta fan-out
(:meth:`ChainIndex.subscribe_deltas
<repro.chain.index.ChainIndex.subscribe_deltas>`) and clusters *as the
chain arrives* — folding the
:class:`~repro.chain.delta.BlockDelta`'s pre-resolved id arrays rather
than re-walking the block's transaction list — so one pass yields every
height:

* **H1** co-spend unions are applied eagerly to an undo-logged
  :class:`~repro.core.union_find.IntUnionFind`, with a checkpoint per
  block — the H1 state at any height is a rollback away.
* **H2** labels are decided with the purely-past checks the moment their
  transaction arrives, then *watched*: a later input to the candidate
  within the waiting window voids the label (the §4.2 wait rule), which
  is recorded as the label's ``voided_at`` height.  A label is part of
  the clustering at horizon ``h`` iff it was born by ``h`` and not yet
  voided at ``h`` — exactly the batch engine's ``as_of_height``
  semantics.
* :meth:`snapshot` / :meth:`cluster_as_of` combine the two: roll the H1
  log to the height's checkpoint, overlay the then-active change links,
  read off the partition, and restore.  :meth:`cluster_count_series`
  sweeps all heights forward in O(unions + heights × active labels) —
  no per-height re-clustering.

Equivalence contract (tested property-style): for every height ``h``,
``cluster_as_of(h)`` induces the same partition and the same label set
as ``ClusteringEngine.cluster(as_of_height=h)``.  The contract assumes
non-decreasing block timestamps (true of all simulated worlds): with
time running backwards a receive could fall outside one horizon's
wait-window clamp while being inside a later one.  When the wait rule
is configured, the engine *enforces* that assumption: a block whose
timestamp precedes its predecessor's raises
:class:`~repro.chain.errors.NonMonotonicTimestampError` instead of
silently mislabeling (the block is left unclustered; with
``wait_seconds=None`` no clamp exists and non-monotone stamps are
accepted).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass

from ..chain.delta import BlockDelta, TxDelta
from ..chain.errors import NonMonotonicTimestampError
from ..chain.index import ChainIndex
from ..obs import COUNT_BUCKETS, NULL_REGISTRY
from .clustering import Clustering, InternedPartition
from .heuristic2 import (
    ChangeLabel,
    Heuristic2,
    Heuristic2Config,
    Heuristic2Result,
    is_dice_spend,
)
from .union_find import IntUnionFind


@dataclass(eq=False)
class _LiveLabel:
    """One change label being tracked through time."""

    label: ChangeLabel
    address_id: int
    input_id: int | None
    """First input's address id (the union partner); None if inputs had
    no resolvable addresses."""

    deadline: int | None
    """Chain-time instant after which later inputs no longer void the
    label (``None`` when no waiting period is configured)."""

    voided_at: int | None = None
    """Height of the first disqualifying later input, or ``None`` while
    the label stands."""

    settled_at: int | None = None
    """Height at which the label became permanent — its wait window
    closed unvoided (or its birth height when no window was configured).
    ``None`` while the window is still open (the label is *voidable*).
    Mutually exclusive with :attr:`voided_at`.  Differential consumers
    key on this: a settled label's change link can be folded into
    derived per-cluster state for good, an open one only overlaid."""

    def active_at(self, height: int) -> bool:
        return self.label.height <= height and (
            self.voided_at is None or self.voided_at > height
        )


@dataclass(frozen=True)
class ClusterBlockDelta:
    """One block's clustering churn, for differential consumers.

    Everything a per-cluster materialized view needs to fold a block
    without re-reading the partition: the H1 merges the block applied
    (in fold order, as ``(absorbed_root, kept_root)`` entries off the
    engine's merge log), the labels born at the height, the labels a
    later receive *voided* at the height, and the labels whose wait
    window closed unvoided at the height (now permanent).  Every born
    label is, at any later height, exactly one of open / voided /
    settled, so ``base links (H1 + settled) ∪ open links`` always equals
    the engine's active link set at the tip.
    """

    height: int
    merges: tuple[tuple[int, int], ...]
    born: tuple[_LiveLabel, ...]
    voided: tuple[_LiveLabel, ...]
    settled: tuple[_LiveLabel, ...]


@dataclass(frozen=True)
class ClusterSnapshot:
    """Per-height clustering accounting (one :meth:`snapshot` /
    one point of :meth:`cluster_count_series`)."""

    height: int
    address_count: int
    h1_clusters: int
    clusters: int
    active_labels: int


class IncrementalClusteringEngine:
    """Streams H1+H2 clustering from a :class:`ChainIndex`, per block.

    Construction catches up on blocks the index already holds, then
    subscribes to the index's observer hook so every future
    ``add_block`` is clustered on arrival.  Call :meth:`detach` to stop
    following the index.
    """

    def __init__(
        self,
        index: ChainIndex,
        *,
        h2_config: Heuristic2Config | None = None,
        dice_addresses: frozenset[str] = frozenset(),
        follow: bool = True,
        metrics=None,
    ) -> None:
        self.index = index
        self.h2_config = h2_config or Heuristic2Config.refined()
        self.dice_addresses = dice_addresses
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        """Telemetry sink for the ``engine.*`` per-block fold metrics
        (H1 pair-batch sizes, effective merges, label lifecycle)."""
        self._h2 = Heuristic2(index, self.h2_config, dice_addresses=dice_addresses)
        self._uf = IntUnionFind()
        """H1-only unions, eagerly applied; H2 links are overlaid per
        snapshot so voided labels never need un-unioning."""
        self._marks: list[int] = []
        """Merge-log position at the end of each height."""
        self._seen: list[int] = []
        """Addresses seen by the end of each height.  Ids are allocated
        dense and first-sight ordered, so this is ``1 + max id`` over
        the block prefix's outputs — computed from the blocks themselves
        because in catch-up mode the interner already holds the whole
        chain."""
        self._max_id = -1
        self._labels: list[_LiveLabel] = []
        """All labels ever born, in chain order."""
        self._label_marks: list[int] = []
        """Labels born by the end of each height (birth order is chain
        order, so each height's births are one contiguous slice)."""
        self._voids_at: dict[int, list[_LiveLabel]] = {}
        """height -> labels voided at that height (delta bookkeeping)."""
        self._settles_at: dict[int, list[_LiveLabel]] = {}
        """height -> labels that became permanent at that height."""
        self._watch: dict[int, list[_LiveLabel]] = {}
        """address id -> labels whose wait window is still open there."""
        self._watch_heap: list[tuple[int, int, _LiveLabel]] = []
        """(deadline, seq, label) min-heap: expired watch entries are
        swept out as block time passes, so the watch set stays bounded
        by the labels whose windows are genuinely open."""
        self._last_timestamp: int | None = None
        """Previous block's timestamp, for the monotonicity check."""
        self._refused_height: int | None = None
        """Height of the block the monotonicity check rejected, if any:
        the engine is permanently behind the index from that point, so
        every later block is refused with a diagnosis instead of a
        misleading out-of-order error."""
        self._as_of_cache: OrderedDict[int, Clustering] = OrderedDict()
        """Recently materialized ``cluster_as_of`` answers, keyed by
        height.  Sound because a height's answer is immutable once the
        height has been clustered: later blocks only append, and a
        wait-rule void recorded at ``v`` never changes ``active_at(h)``
        for ``h < v``.  This is what lets a serving layer ask for the
        tip clustering per query without re-materializing."""
        self._h1_as_of_cache: OrderedDict[int, Clustering] = OrderedDict()
        """Recently materialized ``cluster_h1_as_of`` answers.  Kept
        separate from ``_as_of_cache`` so co-spend-only callers (peel
        recipient naming) never evict full-heuristic horizons."""
        self._unsubscribe = None
        for height in range(index.height + 1):
            self._observe_delta(index.block_delta(height))
        if follow:
            self._unsubscribe = index.subscribe_deltas(
                self._observe_delta, name="engine"
            )

    # ------------------------------------------------------------------
    # streaming ingestion
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Last height clustered (-1 before any block)."""
        return len(self._marks) - 1

    def detach(self) -> None:
        """Stop observing the index (already-clustered state remains)."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def _observe_delta(self, delta: BlockDelta) -> None:
        height = delta.height
        if self._refused_height is not None:
            raise NonMonotonicTimestampError(
                f"engine stopped at height {len(self._marks) - 1} after "
                f"refusing non-monotonic block {self._refused_height}; "
                f"detach() and rebuild to cluster this chain"
            )
        if height != len(self._marks):
            raise ValueError(
                f"blocks must stream in order: expected height "
                f"{len(self._marks)}, got {height}"
            )
        id_of = self.index.interner.id_of
        uf = self._uf
        watching = self.h2_config.wait_seconds is not None
        now = delta.timestamp
        if watching:
            # The wait-window clamp assumes chain time never runs
            # backwards; refuse the block rather than mislabel (§4.2).
            if self._last_timestamp is not None and now < self._last_timestamp:
                self._refused_height = height
                raise NonMonotonicTimestampError(
                    f"block {height} timestamp {now} precedes previous "
                    f"block's {self._last_timestamp}; the §4.2 wait rule "
                    f"requires non-decreasing timestamps (use "
                    f"wait_seconds=None to cluster such chains)"
                )
            self._sweep_expired_watches(now, height)
        self._last_timestamp = now
        # The delta pre-resolved every id: grow the universe once per
        # block (ids are dense, inputs always precede the block's max).
        if delta.max_id > self._max_id:
            self._max_id = delta.max_id
            if delta.max_id >= len(uf):
                uf.ensure(delta.max_id + 1)
        # 1. Wait-rule voiding: a receive to a watched candidate at a
        #    *later* height, inside its window, kills the label — unless
        #    every sender is a known dice game (§4.2).  Runs before the
        #    unions but never reads the union-find, so hoisting the H1
        #    pass out of the per-tx loop changes nothing.
        if watching and self._watch:
            for txd in delta.txs:
                self._apply_voiding(txd, height, now)
        # 2. H1: co-spent inputs union (outputs already seated above).
        #    The delta pre-flattened every tx's co-spend chain into one
        #    pair-array pass — same merge log as per-tx union_many
        #    chains (see BlockDelta.h1_a), one C loop per block.
        if len(delta.h1_a):
            uf.union_many(delta.h1_a, delta.h1_b)
        # 3. H2: purely-past label decisions for this block's txs.  Runs
        #    after the voiding pass so same-height receives never void a
        #    newborn label (the batch rule is strictly-later receives).
        for txd in delta.txs:
            label, _reason = self._h2.identify_change_static(txd.tx)
            if label is None:
                continue
            input_ids = txd.input_ids
            live = _LiveLabel(
                label=label,
                address_id=id_of(label.address),
                input_id=input_ids[0] if input_ids else None,
                deadline=(
                    now + self.h2_config.wait_seconds if watching else None
                ),
            )
            self._labels.append(live)
            if watching:
                self._watch.setdefault(live.address_id, []).append(live)
                heapq.heappush(
                    self._watch_heap, (live.deadline, len(self._labels), live)
                )
            else:
                # No wait window: nothing can ever void the label, so it
                # is permanent from birth.
                live.settled_at = height
                self._settles_at.setdefault(height, []).append(live)
        previous_mark = self._marks[-1] if self._marks else 0
        previous_label_mark = self._label_marks[-1] if self._label_marks else 0
        self._marks.append(uf.checkpoint())
        self._seen.append(self._max_id + 1)
        self._label_marks.append(len(self._labels))
        metrics = self.metrics
        if metrics.enabled:
            metrics.histogram(
                "engine.h1_pairs", buckets=COUNT_BUCKETS
            ).observe(len(delta.h1_a))
            metrics.counter("engine.merges").inc(
                self._marks[-1] - previous_mark
            )
            metrics.counter("engine.labels_born").inc(
                self._label_marks[-1] - previous_label_mark
            )
            metrics.counter("engine.labels_voided").inc(
                len(self._voids_at.get(height, ()))
            )
            metrics.counter("engine.labels_settled").inc(
                len(self._settles_at.get(height, ()))
            )

    def _sweep_expired_watches(self, now: int, height: int) -> None:
        """Drop watch entries whose wait window has closed (the labels
        stand for good); each label is pushed and popped exactly once.
        Unvoided expirations are recorded as settling at ``height`` —
        the block whose timestamp closed the window — which is the
        moment differential consumers may fold the label's change link
        into permanent per-cluster state."""
        heap = self._watch_heap
        while heap and heap[0][0] < now:
            _deadline, _seq, live = heapq.heappop(heap)
            if live.voided_at is None:
                live.settled_at = height
                self._settles_at.setdefault(height, []).append(live)
            watchers = self._watch.get(live.address_id)
            if watchers is None:
                continue
            watchers = [w for w in watchers if w is not live]
            if watchers:
                self._watch[live.address_id] = watchers
            else:
                del self._watch[live.address_id]

    def _apply_voiding(self, txd: TxDelta, height: int, now: int) -> None:
        excused: bool | None = None  # lazily computed, once per tx
        for ident in txd.output_ids:
            if ident < 0:
                continue
            watchers = self._watch.get(ident)
            if not watchers:
                continue
            still_open = []
            for live in watchers:
                if live.voided_at is not None:
                    continue
                if now > live.deadline:
                    continue  # window closed; label stands for good
                if live.label.height >= height:
                    still_open.append(live)  # same-block receive: no void
                    continue
                if excused is None:
                    excused = self._receive_excused(txd.tx)
                if excused:
                    still_open.append(live)
                else:
                    live.voided_at = height
                    self._voids_at.setdefault(height, []).append(live)
            if still_open:
                self._watch[ident] = still_open
            else:
                del self._watch[ident]

    def _receive_excused(self, tx) -> bool:
        """The §4.2 dice exception, same guard and sender test as batch."""
        if not (self.h2_config.dice_exception and self.dice_addresses):
            return False
        return is_dice_spend(self.index, tx, self.dice_addresses)

    # ------------------------------------------------------------------
    # per-block deltas (differential consumers)
    # ------------------------------------------------------------------

    def cluster_delta(self, height: int) -> ClusterBlockDelta:
        """One clustered block's churn, re-exposed off the merge log.

        The H1 entries are the engine union-find's own
        :meth:`~repro.core.union_find.IntUnionFind.log_span` between the
        height's checkpoints — safe to read at any block boundary
        because the engine's time-travel brackets
        (:meth:`snapshot` / :meth:`cluster_as_of`) always restore the
        log exactly (every rollback is balanced by an exact replay), so
        a height's span never changes once the height is clustered.
        Labels are the live objects (identity-shared with the engine's
        watch state); consumers read, never mutate.
        """
        if not 0 <= height <= self.height:
            raise IndexError(
                f"height {height} outside clustered range 0..{self.height}"
            )
        merge_start = self._marks[height - 1] if height else 0
        label_start = self._label_marks[height - 1] if height else 0
        return ClusterBlockDelta(
            height=height,
            merges=tuple(self._uf.log_span(merge_start, self._marks[height])),
            born=tuple(self._labels[label_start:self._label_marks[height]]),
            voided=tuple(self._voids_at.get(height, ())),
            settled=tuple(self._settles_at.get(height, ())),
        )

    def open_labels(self) -> list[_LiveLabel]:
        """Labels still voidable at the tip (window open, unvoided).

        Exactly the labels a differential consumer must *overlay* rather
        than fold: their change links are part of the tip clustering but
        may still disappear via the §4.2 wait rule.
        """
        return [
            live
            for live in self._labels
            if live.voided_at is None and live.settled_at is None
        ]

    @property
    def open_label_count(self) -> int:
        """How many labels are still inside their §4.2 wait window.

        The health model reads this as the engine's backlog: every open
        label is overlay work for differential consumers, so a count
        that keeps growing means change outputs are not settling."""
        return sum(
            1
            for live in self._labels
            if live.voided_at is None and live.settled_at is None
        )

    # ------------------------------------------------------------------
    # durable state (snapshot / restore)
    # ------------------------------------------------------------------

    STATE_VERSION = 2

    def export_state(self) -> dict:
        """Flatten the engine into plain picklable data.

        Labels are exported as tuples in birth order; the watch map and
        the deadline heap reference them by index, so
        :meth:`from_state` rebuilds the exact identity-shared structure
        (a label voided later must be the same object everywhere).  The
        union-find state carries its merge log, and ``marks`` the
        per-height log positions — together the full time-travel record.
        """
        label_index = {id(live): i for i, live in enumerate(self._labels)}
        return {
            "version": self.STATE_VERSION,
            "uf": self._uf.export_state(),
            "marks": list(self._marks),
            "seen": list(self._seen),
            "max_id": self._max_id,
            "last_timestamp": self._last_timestamp,
            "refused_height": self._refused_height,
            "labels": [
                (
                    live.label.txid,
                    live.label.vout,
                    live.label.address,
                    live.label.height,
                    live.address_id,
                    live.input_id,
                    live.deadline,
                    live.voided_at,
                    live.settled_at,
                )
                for live in self._labels
            ],
            "watch": {
                address_id: [label_index[id(live)] for live in watchers]
                for address_id, watchers in self._watch.items()
            },
            "watch_heap": [
                (deadline, seq, label_index[id(live)])
                for deadline, seq, live in self._watch_heap
            ],
        }

    @classmethod
    def from_state(
        cls,
        index: ChainIndex,
        state: dict,
        *,
        h2_config: Heuristic2Config | None = None,
        dice_addresses: frozenset[str] = frozenset(),
        follow: bool = True,
        metrics=None,
    ) -> "IncrementalClusteringEngine":
        """Rebuild an engine from :meth:`export_state` output.

        ``index`` must hold exactly the chain prefix the state was
        exported at (same heights, same interner ids); ``h2_config`` and
        ``dice_addresses`` must match the exporting engine's, since they
        govern how *future* blocks are clustered.  The restored engine
        resumes streaming right where the exported one stopped.
        """
        version = state.get("version")
        if version != cls.STATE_VERSION:
            raise ValueError(
                f"unsupported engine state version {version!r} "
                f"(expected {cls.STATE_VERSION})"
            )
        engine = cls.__new__(cls)
        engine.index = index
        engine.h2_config = h2_config or Heuristic2Config.refined()
        engine.dice_addresses = dice_addresses
        engine.metrics = metrics if metrics is not None else NULL_REGISTRY
        engine._h2 = Heuristic2(
            index, engine.h2_config, dice_addresses=dice_addresses
        )
        engine._uf = IntUnionFind.from_state(state["uf"])
        engine._marks = list(state["marks"])
        engine._seen = list(state["seen"])
        engine._max_id = state["max_id"]
        engine._last_timestamp = state["last_timestamp"]
        engine._refused_height = state["refused_height"]
        engine._labels = [
            _LiveLabel(
                label=ChangeLabel(txid, vout, address, height),
                address_id=address_id,
                input_id=input_id,
                deadline=deadline,
                voided_at=voided_at,
                settled_at=settled_at,
            )
            for (
                txid,
                vout,
                address,
                height,
                address_id,
                input_id,
                deadline,
                voided_at,
                settled_at,
            ) in state["labels"]
        ]
        # Per-height delta indexes are derived data: rebuilt from the
        # label fields rather than exported (one pass, no extra state).
        engine._label_marks = []
        engine._voids_at = {}
        engine._settles_at = {}
        born_so_far = 0
        for height in range(len(engine._marks)):
            while (
                born_so_far < len(engine._labels)
                and engine._labels[born_so_far].label.height == height
            ):
                born_so_far += 1
            engine._label_marks.append(born_so_far)
        for live in engine._labels:
            if live.voided_at is not None:
                engine._voids_at.setdefault(live.voided_at, []).append(live)
            if live.settled_at is not None:
                engine._settles_at.setdefault(live.settled_at, []).append(live)
        engine._watch = {
            address_id: [engine._labels[i] for i in watcher_indices]
            for address_id, watcher_indices in state["watch"].items()
        }
        # The exported heap order is a valid heap invariant (entries
        # compare on (deadline, seq) alone), so it is adopted verbatim.
        engine._watch_heap = [
            (deadline, seq, engine._labels[i])
            for deadline, seq, i in state["watch_heap"]
        ]
        engine._as_of_cache = OrderedDict()
        engine._h1_as_of_cache = OrderedDict()
        engine._unsubscribe = None
        if len(engine._marks) != index.height + 1:
            raise ValueError(
                f"engine state is at height {len(engine._marks) - 1} but the "
                f"index is at {index.height}"
            )
        if follow:
            engine._unsubscribe = index.subscribe_deltas(
                engine._observe_delta, name="engine"
            )
        return engine

    # ------------------------------------------------------------------
    # time travel
    # ------------------------------------------------------------------

    def _check_height(self, height: int | None) -> int | None:
        """Resolve a horizon; ``None`` means "empty chain, empty answer"
        (matching the batch engine on a chain with no blocks)."""
        if height is None:
            if self.height < 0:
                return None
            height = self.height
        if not 0 <= height <= self.height:
            raise IndexError(
                f"height {height} outside clustered range 0..{self.height}"
            )
        return height

    def _active_labels(self, height: int) -> list[_LiveLabel]:
        return [live for live in self._labels if live.active_at(height)]

    def snapshot(self, height: int | None = None) -> ClusterSnapshot:
        """Per-height accounting via rollback on the live structure.

        Rolls the H1 log back to the height's checkpoint, overlays the
        then-active change links, reads the counts, and restores the
        tip state exactly — O(log suffix + total labels born), no chain
        re-scan.  For *every* height at once use
        :meth:`cluster_count_series`, which amortizes the label
        bookkeeping across the sweep.
        """
        height = self._check_height(height)
        if height is None:
            return ClusterSnapshot(
                height=-1, address_count=0, h1_clusters=0, clusters=0,
                active_labels=0,
            )
        uf = self._uf
        suffix = uf.rollback(self._marks[height])
        overlay = uf.checkpoint()
        active = self._active_labels(height)
        for live in active:
            if live.input_id is not None:
                uf.union(live.address_id, live.input_id)
        # Ids first seen after `height` sit in the structure as rolled-
        # back singletons; discount them to match the prefix universe.
        unseen = len(uf) - self._seen[height]
        clusters = uf.component_count - unseen
        uf.rollback(overlay)
        h1_clusters = uf.component_count - unseen
        uf.replay(suffix)
        return ClusterSnapshot(
            height=height,
            address_count=self._seen[height],
            h1_clusters=h1_clusters,
            clusters=clusters,
            active_labels=len(active),
        )

    def cluster_as_of(self, height: int | None = None) -> Clustering:
        """A materialized :class:`Clustering` equal to the batch engine's
        ``cluster(as_of_height=height)`` — without re-running heuristics.

        Replays the H1 merge log up to the height's checkpoint onto a
        fresh structure over the prefix universe, then applies the
        change links active at that horizon.  The last few materialized
        answers are memoized per height (immutable once clustered, so
        reuse is exact); heavy query traffic against a fixed tip pays
        the materialization once.
        """
        height = self._check_height(height)
        if height is None:
            return Clustering(
                uf=InternedPartition(IntUnionFind(), self.index.interner),
                heuristics="h1+h2",
                h2_result=Heuristic2Result(),
            )
        cached = self._as_of_cache.get(height)
        if cached is not None:
            self._as_of_cache.move_to_end(height)
            return cached
        uf = IntUnionFind(self._seen[height])
        uf.replay(self._uf.log_prefix(self._marks[height]))
        active = self._active_labels(height)
        result = Heuristic2Result(labels=[live.label for live in active])
        for live in active:
            if live.input_id is not None:
                uf.union(live.address_id, live.input_id)
        clustering = Clustering(
            uf=InternedPartition(uf, self.index.interner),
            heuristics="h1+h2",
            h2_result=result,
        )
        self._as_of_cache[height] = clustering
        while len(self._as_of_cache) > self._AS_OF_CACHE_SIZE:
            self._as_of_cache.popitem(last=False)
        return clustering

    _AS_OF_CACHE_SIZE = 4
    """Materialized horizons kept around; each holds an O(addresses)
    structure, so the memo is deliberately tiny."""

    def cluster_h1_as_of(self, height: int | None = None) -> Clustering:
        """The co-spend-only (Heuristic 1) partition as of ``height``.

        Same checkpoint replay as :meth:`cluster_as_of` but without the
        change-link overlay: only unions witnessed by actual co-spends.
        This is the partition of record for naming *counterparties* —
        a peel recipient's output is by construction not the spender's
        change, so any change label claiming it contradicts the peel
        classification, and settled cross-party change links are exactly
        what drag recipients into the wrong cluster.
        """
        height = self._check_height(height)
        if height is None:
            return Clustering(
                uf=InternedPartition(IntUnionFind(), self.index.interner),
                heuristics="h1",
            )
        cached = self._h1_as_of_cache.get(height)
        if cached is not None:
            self._h1_as_of_cache.move_to_end(height)
            return cached
        uf = IntUnionFind(self._seen[height])
        uf.replay(self._uf.log_prefix(self._marks[height]))
        clustering = Clustering(
            uf=InternedPartition(uf, self.index.interner),
            heuristics="h1",
        )
        self._h1_as_of_cache[height] = clustering
        while len(self._h1_as_of_cache) > self._AS_OF_CACHE_SIZE:
            self._h1_as_of_cache.popitem(last=False)
        return clustering

    def cluster_count_series(self) -> list[ClusterSnapshot]:
        """Cluster counts at *every* height, in one forward sweep.

        Replays the recorded H1 merge log height by height (O(1) per
        union, no finds) and overlays each height's active change links
        inside a checkpoint/rollback bracket.  Total cost is
        O(unions + Σ active labels) — versus the naive loop's
        O(chain × heights) of full re-clustering.
        """
        uf = IntUnionFind()
        log = self._uf.log_prefix(self._marks[-1]) if self._marks else []
        born: dict[int, list[_LiveLabel]] = {}
        voids: dict[int, list[_LiveLabel]] = {}
        for live in self._labels:
            born.setdefault(live.label.height, []).append(live)
            if live.voided_at is not None:
                voids.setdefault(live.voided_at, []).append(live)
        active: set[_LiveLabel] = set()
        points: list[ClusterSnapshot] = []
        position = 0
        for height in range(self.height + 1):
            uf.ensure(self._seen[height])
            mark = self._marks[height]
            uf.replay(log[position:mark])
            position = mark
            active.update(born.get(height, ()))
            active.difference_update(voids.get(height, ()))
            h1_clusters = uf.component_count
            overlay = uf.checkpoint()
            for live in active:
                if live.input_id is not None:
                    uf.union(live.address_id, live.input_id)
            clusters = uf.component_count
            uf.rollback(overlay)
            points.append(
                ClusterSnapshot(
                    height=height,
                    address_count=self._seen[height],
                    h1_clusters=h1_clusters,
                    clusters=clusters,
                    active_labels=len(active),
                )
            )
        return points

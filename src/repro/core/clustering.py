"""Combined clustering: Heuristic 1 + Heuristic 2 over a chain index.

:class:`ClusteringEngine` runs the heuristics and produces a
:class:`Clustering` — the partition of all addresses into users.  The
paper's headline pipeline is ``H1`` for the co-spend backbone plus the
refined ``H2`` change links layered on top (§4.2 uses "Heuristic 2
exclusively" for the analysis sections, meaning H1+refined-H2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..chain.index import ChainIndex
from .heuristic1 import cluster_h1
from .heuristic2 import Heuristic2, Heuristic2Config, Heuristic2Result
from .union_find import UnionFind


@dataclass
class Clustering:
    """A partition of addresses into inferred users."""

    uf: UnionFind
    heuristics: str
    h2_result: Heuristic2Result | None = None

    def cluster_of(self, address: str):
        """Canonical cluster id for an address (its union-find root)."""
        return self.uf.find(address)

    def same_cluster(self, a: str, b: str) -> bool:
        """Were the two addresses inferred to share an owner?"""
        return self.uf.connected(a, b)

    @property
    def address_count(self) -> int:
        return len(self.uf)

    @property
    def cluster_count(self) -> int:
        return self.uf.component_count

    def clusters(self) -> dict:
        """Materialize ``cluster id -> member addresses``."""
        return self.uf.components()

    def largest_clusters(self, n: int = 10) -> list[tuple[object, int]]:
        """The ``n`` biggest clusters as ``(cluster id, size)``."""
        components = self.uf.components()
        sized = [(root, len(members)) for root, members in components.items()]
        sized.sort(key=lambda pair: (-pair[1], str(pair[0])))
        return sized[:n]

    def effective_cluster_count(self, tags: Mapping[str, str]) -> int:
        """Cluster count after collapsing clusters sharing a tag.

        The paper's 3,384,179 → 3,383,904 step: clusters tagged with the
        same service name are counted as one user even though no chain
        evidence joined them.
        """
        roots_by_entity: dict[str, set] = {}
        tagged_roots: set = set()
        for address, entity in tags.items():
            if address not in self.uf:
                continue
            root = self.uf.find(address)
            roots_by_entity.setdefault(entity, set()).add(root)
            tagged_roots.add(root)
        collapsed = sum(
            len(roots) - 1 for roots in roots_by_entity.values() if len(roots) > 1
        )
        return self.cluster_count - collapsed


class ClusteringEngine:
    """Runs the heuristics against one chain index."""

    def __init__(
        self,
        index: ChainIndex,
        *,
        h2_config: Heuristic2Config | None = None,
        dice_addresses: frozenset[str] = frozenset(),
    ) -> None:
        self.index = index
        self.h2_config = h2_config or Heuristic2Config.refined()
        self.dice_addresses = dice_addresses

    def cluster_h1_only(self, *, as_of_height: int | None = None) -> Clustering:
        """Heuristic 1 alone (the prior-work baseline)."""
        uf = cluster_h1(self.index, as_of_height=as_of_height)
        return Clustering(uf=uf, heuristics="h1")

    def cluster(self, *, as_of_height: int | None = None) -> Clustering:
        """Heuristic 1 plus (configured) Heuristic 2."""
        uf = cluster_h1(self.index, as_of_height=as_of_height)
        heuristic2 = Heuristic2(
            self.index, self.h2_config, dice_addresses=self.dice_addresses
        )
        result = Heuristic2Result()
        for tx, location in self.index.iter_transactions():
            if as_of_height is not None and location.height > as_of_height:
                break
            label, _reason = heuristic2.identify_change(
                tx, as_of_height=as_of_height
            )
            if label is None:
                continue
            result.labels.append(label)
            inputs = self.index.input_addresses(tx)
            if inputs:
                uf.union(label.address, inputs[0])
        return Clustering(uf=uf, heuristics="h1+h2", h2_result=result)

"""Combined clustering: Heuristic 1 + Heuristic 2 over a chain index.

:class:`ClusteringEngine` runs the heuristics and produces a
:class:`Clustering` — the partition of all addresses into users.  The
paper's headline pipeline is ``H1`` for the co-spend backbone plus the
refined ``H2`` change links layered on top (§4.2 uses "Heuristic 2
exclusively" for the analysis sections, meaning H1+refined-H2).

Internally the heuristics run over dense interned address ids on an
array-backed :class:`~repro.core.union_find.IntUnionFind`;
:class:`InternedPartition` is the string-facing view consumers read, so
address strings only reappear at the reporting edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from ..chain.index import ChainIndex
from ..chain.intern import AddressInterner
from .heuristic1 import cluster_h1_ids
from .heuristic2 import Heuristic2, Heuristic2Config, Heuristic2Result
from .union_find import IntUnionFind, UnionFind


class InternedPartition:
    """Address-string view over an id-keyed :class:`IntUnionFind`.

    Exposes the same read API as :class:`UnionFind` keyed by address
    strings (cluster roots are dense int ids — opaque to consumers), so
    naming, super-cluster diagnosis, metrics, and exports run unchanged
    on top of the interned hot path.  The view's universe is the ids the
    underlying structure holds, which may be a prefix of the interner
    (``cluster(as_of_height=h)`` covers only addresses seen by ``h``).

    All lookups are non-mutating: querying an unknown address never adds
    it.
    """

    __slots__ = ("_uf", "_interner")

    def __init__(self, uf: IntUnionFind, interner: AddressInterner) -> None:
        self._uf = uf
        self._interner = interner

    @property
    def int_uf(self) -> IntUnionFind:
        """The underlying id-keyed structure (the hot path)."""
        return self._uf

    @property
    def interner(self) -> AddressInterner:
        return self._interner

    def _id(self, item: "str | int") -> int | None:
        """Resolve an address string or raw id to an in-scope id."""
        ident = self._interner.id_of(item) if isinstance(item, str) else item
        if ident is None or not 0 <= ident < len(self._uf):
            return None
        return ident

    def __contains__(self, item: "str | int") -> bool:
        return self._id(item) is not None

    def __len__(self) -> int:
        return len(self._uf)

    @property
    def component_count(self) -> int:
        return self._uf.component_count

    def find(self, item: "str | int") -> int:
        """Root id of ``item``'s cluster (``KeyError`` if out of scope)."""
        ident = self._id(item)
        if ident is None:
            raise KeyError(item)
        return self._uf.find(ident)

    def find_root(self, item: "str | int") -> int | None:
        """Root id of ``item``'s cluster, or ``None`` if out of scope."""
        ident = self._id(item)
        return None if ident is None else self._uf.find(ident)

    def connected(self, a: "str | int", b: "str | int") -> bool:
        ra, rb = self.find_root(a), self.find_root(b)
        return ra is not None and ra == rb

    def size_of(self, item: "str | int") -> int:
        """Cluster size for an address string or a root/member id."""
        ident = self._id(item)
        if ident is None:
            raise KeyError(item)
        return self._uf.size_of(ident)

    def component_sizes(self) -> dict[int, int]:
        """``root id -> cluster size`` straight off the size array."""
        return self._uf.component_sizes()

    def components(self) -> dict[int, list[str]]:
        """Materialize ``root id -> member address strings``."""
        addresses_of = self._interner.addresses_of
        return {
            root: addresses_of(members)
            for root, members in self._uf.components().items()
        }

    def iter_items(self) -> Iterator[str]:
        """All in-scope addresses, in first-sight order."""
        address_of = self._interner.address_of
        for ident in range(len(self._uf)):
            yield address_of(ident)

    def address_of(self, ident: int) -> str:
        """Reporting edge: the address string for an id."""
        return self._interner.address_of(ident)


@dataclass
class Clustering:
    """A partition of addresses into inferred users."""

    uf: "InternedPartition | UnionFind"
    heuristics: str
    h2_result: Heuristic2Result | None = None

    def cluster_of(self, address: str):
        """Canonical cluster id for an address (its partition root), or
        ``None`` for an address the clustering has never seen.  Lookups
        never mutate the partition."""
        return self.uf.find_root(address)

    def same_cluster(self, a: str, b: str) -> bool:
        """Were the two addresses inferred to share an owner?"""
        return self.uf.connected(a, b)

    @property
    def address_count(self) -> int:
        return len(self.uf)

    @property
    def cluster_count(self) -> int:
        return self.uf.component_count

    def clusters(self) -> dict:
        """Materialize ``cluster id -> member addresses``."""
        return self.uf.components()

    def component_sizes(self) -> dict:
        """``cluster id -> size`` without materializing member lists."""
        return self.uf.component_sizes()

    def largest_clusters(self, n: int = 10) -> list[tuple[object, int]]:
        """The ``n`` biggest clusters as ``(cluster id, size)``."""
        sized = list(self.uf.component_sizes().items())
        sized.sort(key=lambda pair: (-pair[1], str(pair[0])))
        return sized[:n]

    def effective_cluster_count(self, tags: Mapping[str, str]) -> int:
        """Cluster count after collapsing clusters sharing a tag.

        The paper's 3,384,179 → 3,383,904 step: clusters tagged with the
        same service name are counted as one user even though no chain
        evidence joined them.
        """
        roots_by_entity: dict[str, set] = {}
        for address, entity in tags.items():
            root = self.uf.find_root(address)
            if root is None:
                continue
            roots_by_entity.setdefault(entity, set()).add(root)
        collapsed = sum(
            len(roots) - 1 for roots in roots_by_entity.values() if len(roots) > 1
        )
        return self.cluster_count - collapsed


class ClusteringEngine:
    """Runs the heuristics against one chain index."""

    def __init__(
        self,
        index: ChainIndex,
        *,
        h2_config: Heuristic2Config | None = None,
        dice_addresses: frozenset[str] = frozenset(),
    ) -> None:
        self.index = index
        self.h2_config = h2_config or Heuristic2Config.refined()
        self.dice_addresses = dice_addresses

    def cluster_h1_only(self, *, as_of_height: int | None = None) -> Clustering:
        """Heuristic 1 alone (the prior-work baseline)."""
        uf = cluster_h1_ids(self.index, as_of_height=as_of_height)
        return Clustering(
            uf=InternedPartition(uf, self.index.interner), heuristics="h1"
        )

    def cluster(self, *, as_of_height: int | None = None) -> Clustering:
        """Heuristic 1 plus (configured) Heuristic 2."""
        index = self.index
        uf = cluster_h1_ids(index, as_of_height=as_of_height)
        heuristic2 = Heuristic2(
            index, self.h2_config, dice_addresses=self.dice_addresses
        )
        id_of = index.interner.id_of
        result = Heuristic2Result()
        for tx, location in index.iter_transactions():
            if as_of_height is not None and location.height > as_of_height:
                break
            label, _reason = heuristic2.identify_change(
                tx, as_of_height=as_of_height
            )
            if label is None:
                continue
            result.labels.append(label)
            input_ids = index.input_address_ids(tx)
            if input_ids:
                uf.union(id_of(label.address), input_ids[0])
        return Clustering(
            uf=InternedPartition(uf, index.interner),
            heuristics="h1+h2",
            h2_result=result,
        )

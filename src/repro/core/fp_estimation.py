"""Temporal false-positive estimation for Heuristic 2 (§4.2).

The paper had no ground truth, so it *estimated* the false-positive rate
by replaying time: an address that looked like a one-time change address
when labeled, but later received another input, was counted as a false
positive.  That naive estimate was 13%; recognizing the Satoshi Dice
send-back idiom cut it to 1%, and waiting a day / a week before labeling
cut it to 0.28% / 0.17%.

:func:`refinement_ladder` reproduces that exact ladder on a simulated
chain.  Because the simulator *does* know the truth, every rung also
reports the real error rate (label's owner ≠ input owner), quantifying
how well the paper's estimator tracks reality.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain.index import ChainIndex, Receive
from .heuristic2 import (
    SECONDS_PER_DAY,
    SECONDS_PER_WEEK,
    find_candidate,
    is_dice_spend,
)


@dataclass(frozen=True)
class FPEstimate:
    """One rung of the ladder."""

    name: str
    labeled: int
    estimated_false_positives: int
    true_false_positives: int | None = None

    @property
    def estimated_rate(self) -> float:
        return self.estimated_false_positives / self.labeled if self.labeled else 0.0

    @property
    def true_rate(self) -> float | None:
        if self.true_false_positives is None or not self.labeled:
            return None
        return self.true_false_positives / self.labeled


@dataclass(frozen=True)
class _Candidate:
    txid: bytes
    address: str
    height: int
    input_owner_ok: bool | None
    """Ground truth: does the label agree with reality (None if unknown)?"""


class FalsePositiveEstimator:
    """Temporal-replay estimator with the §4.2 refinement toggles."""

    def __init__(
        self,
        index: ChainIndex,
        *,
        dice_addresses: frozenset[str] = frozenset(),
        ground_truth=None,
    ) -> None:
        self.index = index
        self.dice_addresses = dice_addresses
        self.ground_truth = ground_truth
        self._candidates: list[_Candidate] | None = None
        self._dice_verdicts: dict[bytes, bool] = {}
        """Per-txid 'is this receive paid solely by dice addresses?'
        verdicts: every ladder rung re-walks the same later receives, so
        the sender resolution is memoized across rungs."""

    # ------------------------------------------------------------------
    # candidate collection (once; rungs share it)
    # ------------------------------------------------------------------

    def candidates(self) -> list[_Candidate]:
        """Base-heuristic candidates across the chain (pure past info)."""
        if self._candidates is not None:
            return self._candidates
        out: list[_Candidate] = []
        for tx, location in self.index.iter_transactions():
            vout, reason = find_candidate(self.index, tx, location.height)
            if vout is None:
                continue
            address = tx.outputs[vout].address
            truth_ok: bool | None = None
            if self.ground_truth is not None:
                inputs = self.index.input_addresses(tx)
                if inputs:
                    owner = self.ground_truth.owner_of(address)
                    input_owner = self.ground_truth.owner_of(inputs[0])
                    if owner is not None and input_owner is not None:
                        truth_ok = owner == input_owner
            out.append(
                _Candidate(
                    txid=tx.txid,
                    address=address,
                    height=location.height,
                    input_owner_ok=truth_ok,
                )
            )
        self._candidates = out
        return out

    # ------------------------------------------------------------------
    # per-rung evaluation
    # ------------------------------------------------------------------

    def _later_receives(self, candidate: _Candidate) -> list[Receive]:
        record = self.index.address(candidate.address)
        return record.receives_after(candidate.height)

    def _is_from_dice(self, receive: Receive) -> bool:
        verdict = self._dice_verdicts.get(receive.txid)
        if verdict is None:
            verdict = is_dice_spend(
                self.index, self.index.tx(receive.txid), self.dice_addresses
            )
            self._dice_verdicts[receive.txid] = verdict
        return verdict

    def estimate(
        self,
        *,
        name: str,
        dice_exception: bool = False,
        wait_seconds: int | None = None,
    ) -> FPEstimate:
        """Evaluate one rung.

        With a waiting period, candidates re-used *within* the wait are
        never labeled (they drop out of the denominator); false positives
        are re-uses after the wait.  The dice exception excuses re-uses
        whose inputs come solely from dice addresses.
        """
        labeled = 0
        estimated_fp = 0
        true_fp = 0
        have_truth = self.ground_truth is not None
        for candidate in self.candidates():
            later = self._later_receives(candidate)
            if dice_exception and self.dice_addresses:
                later = [r for r in later if not self._is_from_dice(r)]
            if wait_seconds is not None:
                deadline = self.index.timestamp_at(candidate.height) + wait_seconds
                within_wait = [
                    r for r in later if self.index.timestamp_at(r.height) <= deadline
                ]
                if within_wait:
                    continue  # never labeled — not in the denominator
                later = [
                    r for r in later if self.index.timestamp_at(r.height) > deadline
                ]
            labeled += 1
            if later:
                estimated_fp += 1
            if have_truth and candidate.input_owner_ok is False:
                true_fp += 1
        return FPEstimate(
            name=name,
            labeled=labeled,
            estimated_false_positives=estimated_fp,
            true_false_positives=true_fp if have_truth else None,
        )

    def refinement_ladder(self) -> list[FPEstimate]:
        """The paper's §4.2 ladder: naive → dice → wait 1d → wait 1w."""
        return [
            self.estimate(name="naive"),
            self.estimate(name="dice-exception", dice_exception=True),
            self.estimate(
                name="wait-one-day",
                dice_exception=True,
                wait_seconds=SECONDS_PER_DAY,
            ),
            self.estimate(
                name="wait-one-week",
                dice_exception=True,
                wait_seconds=SECONDS_PER_WEEK,
            ),
        ]

"""Amortized-growth int64 vectors: the backing store of kernelized folds.

The streaming views keep dense per-address-id state (balances, incidence
counts, first/last-seen heights).  The scalar implementations grew plain
Python lists; the vectorized fold kernels instead scatter whole blocks
of churn into numpy arrays (``np.add.at``, masked assignment), which
needs a *growable* contiguous int64 buffer: ids are dense and
first-sight ordered, so every block extends the universe by its fresh
addresses and then scatters into the prefix.

:class:`IntVector` is that buffer: a logical-length int64 array with
capacity doubling, so per-block :meth:`grow_to` calls (one per block,
off ``BlockDelta.max_id``) cost amortized O(1) per element instead of a
reallocation per block.  The exposed :attr:`array` is a *view* of the
live prefix — re-read it after any ``grow_to``, because growth may
reallocate the backing store.

Snapshot segments store these as raw little-endian bytes
(:meth:`tobytes` / :meth:`from_bytes`): the restore path is one
``memcpy``, not a Python-object rebuild.
"""

from __future__ import annotations

import numpy as np

_DTYPE = np.dtype("<i8")
"""Explicit little-endian int64: snapshot bytes stay portable even if a
big-endian host ever writes one."""


class IntVector:
    """A growable int64 numpy vector with amortized-O(1) extension."""

    __slots__ = ("_data", "_n")

    def __init__(self, n: int = 0, fill: int = 0) -> None:
        self._data = np.full(max(n, 0), fill, dtype=_DTYPE)
        self._n = max(n, 0)

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, ident: int) -> int:
        if not 0 <= ident < self._n:
            raise IndexError(ident)
        return int(self._data[ident])

    def __setitem__(self, ident: int, value: int) -> None:
        if not 0 <= ident < self._n:
            raise IndexError(ident)
        self._data[ident] = value

    @property
    def array(self) -> np.ndarray:
        """Writable view of the live prefix.  Invalidated by growth:
        fetch it again after any :meth:`grow_to`."""
        return self._data[: self._n]

    def grow_to(self, n: int, fill: int = 0) -> None:
        """Extend the logical length to ``n``, filling new slots with
        ``fill``.  Shrinking requests are no-ops."""
        if n <= self._n:
            return
        if n > len(self._data):
            capacity = max(n, 2 * len(self._data), 16)
            data = np.empty(capacity, dtype=_DTYPE)
            data[: self._n] = self._data[: self._n]
            self._data = data
        self._data[self._n : n] = fill
        self._n = n

    def copy(self) -> "IntVector":
        """An independent vector with the same live prefix."""
        vector = IntVector.__new__(IntVector)
        vector._data = self._data[: self._n].copy()
        vector._n = self._n
        return vector

    def tolist(self) -> list[int]:
        """The live prefix as a list of Python ints."""
        return self._data[: self._n].tolist()

    def tobytes(self) -> bytes:
        """The live prefix as raw little-endian int64 bytes."""
        return self._data[: self._n].tobytes()

    @classmethod
    def from_bytes(cls, buffer: bytes) -> "IntVector":
        """Rebuild a vector from :meth:`tobytes` output (one copy)."""
        vector = cls.__new__(cls)
        vector._data = np.frombuffer(buffer, dtype=_DTYPE).copy()
        vector._n = len(vector._data)
        return vector

    @classmethod
    def from_list(cls, values) -> "IntVector":
        """Build a vector from any int sequence (legacy state shapes)."""
        vector = cls.__new__(cls)
        vector._data = np.asarray(list(values), dtype=_DTYPE)
        vector._n = len(vector._data)
        return vector


def as_int64(values) -> np.ndarray:
    """A read-only little-endian int64 array of ``values``.

    The columnar :class:`~repro.chain.delta.BlockDelta` buffers are built
    through this: read-only because one delta object is shared by the
    whole observer fan-out (and may be retained by lazily-flushed
    consumers), so no subscriber can corrupt another's view of it.
    """
    array = np.asarray(values, dtype=_DTYPE)
    array.flags.writeable = False
    return array

"""The paper's core contribution: address clustering heuristics.

* :mod:`~repro.core.heuristic1` — multi-input co-spend clustering (§4.1,
  prior work);
* :mod:`~repro.core.heuristic2` — one-time change identification with
  the §4.2 refinement ladder (the paper's novel heuristic);
* :mod:`~repro.core.clustering` — the combined engine;
* :mod:`~repro.core.incremental` — streaming per-block clustering with
  checkpointed time-travel (one chain pass, every height);
* :mod:`~repro.core.fp_estimation` — temporal-replay false-positive
  estimation (13% → 1% → 0.28% → 0.17% in the paper);
* :mod:`~repro.core.supercluster` — detection of wrongly merged service
  clusters (the Mt.Gox/Instawallet/BitPay/Silk Road giant).
"""

from .clustering import Clustering, ClusteringEngine, InternedPartition
from .fp_estimation import FalsePositiveEstimator, FPEstimate
from .heuristic1 import H1Statistics, cluster_h1, cluster_h1_ids, h1_statistics
from .incremental import ClusterSnapshot, IncrementalClusteringEngine
from .heuristic2 import (
    SECONDS_PER_DAY,
    SECONDS_PER_WEEK,
    ChangeLabel,
    Heuristic2,
    Heuristic2Config,
    Heuristic2Result,
    dice_addresses_from_tags,
    find_candidate,
)
from .supercluster import (
    MergedClusterInfo,
    SuperClusterReport,
    diagnose_superclusters,
)
from .union_find import IntUnionFind, UnionFind

__all__ = [
    "ChangeLabel",
    "ClusterSnapshot",
    "Clustering",
    "ClusteringEngine",
    "FPEstimate",
    "FalsePositiveEstimator",
    "H1Statistics",
    "Heuristic2",
    "Heuristic2Config",
    "Heuristic2Result",
    "IncrementalClusteringEngine",
    "IntUnionFind",
    "InternedPartition",
    "MergedClusterInfo",
    "SECONDS_PER_DAY",
    "SECONDS_PER_WEEK",
    "SuperClusterReport",
    "UnionFind",
    "cluster_h1",
    "cluster_h1_ids",
    "diagnose_superclusters",
    "dice_addresses_from_tags",
    "find_candidate",
    "h1_statistics",
]

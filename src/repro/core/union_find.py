"""Disjoint-set forests: a generic one and an array-backed int one.

:class:`UnionFind` works over arbitrary hashable items (tags, test
fixtures, miscellaneous groupings).  The clustering hot path instead
runs on :class:`IntUnionFind`, which is backed by flat lists indexed by
the dense address ids the chain layer interns, and which keeps an undo
log so unions can be checkpointed and rolled back — the mechanism behind
the incremental engine's time-travel snapshots.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable, Iterator


class UnionFind:
    """Disjoint sets with union-by-size and path compression."""

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        self._components = 0
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Ensure ``item`` exists (as its own singleton set)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1
            self._components += 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        """Number of items tracked."""
        return len(self._parent)

    @property
    def component_count(self) -> int:
        """Number of disjoint sets."""
        return self._components

    def find(self, item: Hashable) -> Hashable:
        """Canonical representative of ``item``'s set (adds if missing)."""
        if item not in self._parent:
            self.add(item)
            return item
        # Iterative find with path compression.
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def find_root(self, item: Hashable) -> Hashable | None:
        """Representative of ``item``'s set, or ``None`` if untracked.

        The read-only counterpart of :meth:`find`: querying an unknown
        item never adds it (so lookups cannot inflate the item count).
        """
        if item not in self._parent:
            return None
        return self.find(item)

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets containing ``a`` and ``b``; returns the root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._components -= 1
        return ra

    def union_all(self, items: Iterable[Hashable]) -> Hashable | None:
        """Merge every item in ``items`` into one set; returns its root."""
        iterator = iter(items)
        try:
            first = next(iterator)
        except StopIteration:
            return None
        root = self.find(first)
        for item in iterator:
            root = self.union(root, item)
        return root

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True when ``a`` and ``b`` share a set."""
        if a not in self._parent or b not in self._parent:
            return False
        return self.find(a) == self.find(b)

    def size_of(self, item: Hashable) -> int:
        """Size of the set containing ``item``."""
        return self._size[self.find(item)]

    def component_sizes(self) -> dict[Hashable, int]:
        """``root -> component size`` without materializing member lists.

        Roots are exactly the self-parented items, so this is a single
        scan of the parent map reading the maintained ``_size`` entries.
        """
        parent = self._parent
        size = self._size
        return {item: size[item] for item, p in parent.items() if p == item}

    def components(self) -> dict[Hashable, list[Hashable]]:
        """Materialize all sets as ``root -> members``."""
        out: dict[Hashable, list[Hashable]] = defaultdict(list)
        for item in self._parent:
            out[self.find(item)].append(item)
        return dict(out)

    def iter_items(self) -> Iterator[Hashable]:
        """All tracked items."""
        return iter(self._parent)

    def copy(self) -> "UnionFind":
        """An independent copy (used to layer H2 on top of H1)."""
        clone = UnionFind()
        clone._parent = dict(self._parent)
        clone._size = dict(self._size)
        clone._components = self._components
        return clone


class MergeCursor:
    """A consumer's position in an :class:`IntUnionFind` merge log.

    Created by :meth:`IntUnionFind.merge_cursor`; advanced by
    :meth:`IntUnionFind.drain_merges`.  ``retracted`` counts merges the
    cursor had already delivered that a later :meth:`IntUnionFind.rollback`
    undid — the next drain reports it so the consumer can reconcile
    (see ``drain_merges`` for the contract).
    """

    __slots__ = ("position", "retracted")

    def __init__(self, position: int) -> None:
        self.position = position
        self.retracted = 0


class IntUnionFind:
    """Array-backed disjoint sets over dense ids ``0..n-1`` with undo.

    Union-by-size **without path compression**: the structure is then a
    pure function of its union log, so any merge can be undone by
    resetting one parent pointer — which is what makes
    :meth:`checkpoint` / :meth:`rollback` / :meth:`replay` exact.  Finds
    are O(log n) worst case (union-by-size bounds tree depth), which the
    flat-list backing more than pays back against the dict-of-strings
    structure on the clustering hot path.

    Consumers that maintain *derived* per-cluster state (the service's
    differential cluster aggregates) subscribe to the merge log with
    :meth:`merge_cursor` / :meth:`drain_merges` instead of re-scanning
    members: each drained ``(absorbed_root, kept_root)`` entry is the
    exact fold order for merging the smaller cluster's aggregate into
    the larger's.
    """

    __slots__ = ("_parent", "_size", "_components", "_log", "_cursors")

    def __init__(self, n: int = 0) -> None:
        self._parent: list[int] = list(range(n))
        self._size: list[int] = [1] * n
        self._components = n
        self._log: list[tuple[int, int]] = []
        """Merge log: ``(absorbed_root, kept_root)`` per effective union."""
        self._cursors: list[MergeCursor] = []
        """Registered merge-log consumers (see :meth:`merge_cursor`)."""

    def ensure(self, n: int) -> None:
        """Grow the universe so ids ``0..n-1`` exist (as singletons)."""
        current = len(self._parent)
        if n <= current:
            return
        self._parent.extend(range(current, n))
        self._size.extend([1] * (n - current))
        self._components += n - current

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, item: int) -> bool:
        return 0 <= item < len(self._parent)

    @property
    def component_count(self) -> int:
        return self._components

    def find(self, item: int) -> int:
        """Root of ``item``'s set (no path compression; see class doc)."""
        parent = self._parent
        while parent[item] != item:
            item = parent[item]
        return item

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; logs the merge for undo."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._components -= 1
        self._log.append((rb, ra))
        return ra

    def union_many(self, items: Iterable[int]) -> int | None:
        """Merge every id in ``items`` into one set; returns its root."""
        iterator = iter(items)
        try:
            root = self.find(next(iterator))
        except StopIteration:
            return None
        for item in iterator:
            root = self.union(root, item)
        return root

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def size_of(self, item: int) -> int:
        return self._size[self.find(item)]

    @property
    def root_sizes(self) -> list[int]:
        """The per-id size array (meaningful only at roots; junk
        elsewhere).  Exposed read-only for hot-path consumers that
        already hold roots — indexing this skips the :meth:`size_of`
        find.  Callers must not mutate it."""
        return self._size

    def component_sizes(self) -> dict[int, int]:
        """``root -> component size`` (roots are self-parented ids)."""
        size = self._size
        return {
            i: size[i] for i, p in enumerate(self._parent) if p == i
        }

    def components(self) -> dict[int, list[int]]:
        """Materialize all sets as ``root -> member ids``."""
        out: dict[int, list[int]] = defaultdict(list)
        for i in range(len(self._parent)):
            out[self.find(i)].append(i)
        return dict(out)

    # ------------------------------------------------------------------
    # checkpoint / rollback / replay
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """A token marking the current position in the merge log."""
        return len(self._log)

    def rollback(self, token: int) -> list[tuple[int, int]]:
        """Undo every union after ``token``; ids added by :meth:`ensure`
        stay (as singletons).  Returns the undone log entries in
        chronological order, suitable for :meth:`replay`.

        Merge cursors past ``token`` are pulled back to it and their
        ``retracted`` count bumped, so a drain-based consumer can never
        silently miss that merges it already folded were undone."""
        undone = self._log[token:]
        parent = self._parent
        size = self._size
        for absorbed, kept in reversed(undone):
            parent[absorbed] = absorbed
            size[kept] -= size[absorbed]
        self._components += len(undone)
        del self._log[token:]
        for cursor in self._cursors:
            if cursor.position > token:
                cursor.retracted += cursor.position - token
                cursor.position = token
        return undone

    def replay(self, entries: Iterable[tuple[int, int]]) -> None:
        """Re-apply previously recorded merges (chronological order).

        Entries must come from this structure's own log (via
        :meth:`rollback` or :meth:`log_prefix`) and be applied onto the
        exact state they were recorded against — each ``absorbed`` must
        currently be a root.  No finds are needed, so replay is O(1) per
        entry.
        """
        parent = self._parent
        size = self._size
        log = self._log
        n = 0
        for absorbed, kept in entries:
            parent[absorbed] = kept
            size[kept] += size[absorbed]
            log.append((absorbed, kept))
            n += 1
        self._components -= n

    def log_prefix(self, token: int) -> list[tuple[int, int]]:
        """The first ``token`` merge-log entries (chronological)."""
        return self._log[:token]

    def log_span(self, start: int, stop: int) -> list[tuple[int, int]]:
        """Merge-log entries between two checkpoint tokens (chronological)."""
        return self._log[start:stop]

    # ------------------------------------------------------------------
    # merge subscription (differential consumers)
    # ------------------------------------------------------------------

    def merge_cursor(self) -> MergeCursor:
        """Register a merge-log consumer at the current log position.

        The cursor sees only merges applied *after* registration; use
        :meth:`drain_merges` to collect them.  Cursors are not part of
        the durable state (:meth:`export_state` ignores them) and are
        not carried over by :meth:`copy` — a consumer re-registers
        against the structure it actually follows.
        """
        cursor = MergeCursor(len(self._log))
        self._cursors.append(cursor)
        return cursor

    def drain_merges(self, cursor: MergeCursor) -> tuple[int, list[tuple[int, int]]]:
        """Merges since the cursor's last drain, advancing the cursor.

        Returns ``(retracted, entries)``: ``entries`` are the
        ``(absorbed_root, kept_root)`` merges now in the log past the
        cursor, in fold order; ``retracted`` counts previously drained
        merges that a :meth:`rollback` undid since — the consumer must
        un-apply its last ``retracted`` folds before applying
        ``entries``.  A consumer that only drains at points where every
        interleaved rollback was balanced by an exact :meth:`replay`
        (the incremental engine's block boundaries) will observe the
        retracted merges re-delivered verbatim at the head of
        ``entries``, so fold-then-refold reconciliation is exact.
        """
        retracted = cursor.retracted
        entries = self._log[cursor.position:]
        cursor.position = len(self._log)
        cursor.retracted = 0
        return retracted, entries

    def release_cursor(self, cursor: MergeCursor) -> None:
        """Deregister a cursor (rollbacks stop adjusting it)."""
        try:
            self._cursors.remove(cursor)
        except ValueError:
            pass

    def copy(self) -> "IntUnionFind":
        """An independent copy (log included; merge cursors are not)."""
        clone = IntUnionFind()
        clone._parent = list(self._parent)
        clone._size = list(self._size)
        clone._components = self._components
        clone._log = list(self._log)
        return clone

    # ------------------------------------------------------------------
    # durable state (snapshot / restore)
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Plain-data state: parents, sizes, and the full merge log.

        The log is part of the state on purpose — the incremental
        engine's time travel replays log prefixes, so a restored
        structure must be able to answer every historical horizon the
        live one could.
        """
        return {
            "parent": list(self._parent),
            "size": list(self._size),
            "components": self._components,
            "log": [tuple(entry) for entry in self._log],
        }

    @classmethod
    def from_state(cls, state: dict) -> "IntUnionFind":
        """Rebuild a structure from :meth:`export_state` output."""
        uf = cls()
        uf._parent = list(state["parent"])
        uf._size = list(state["size"])
        uf._components = state["components"]
        uf._log = [tuple(entry) for entry in state["log"]]
        if len(uf._parent) != len(uf._size):
            raise ValueError("union-find state parents/sizes misaligned")
        return uf

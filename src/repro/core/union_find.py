"""Disjoint-set forest (union-find) over arbitrary hashable items.

The workhorse of both clustering heuristics.  Union by size with path
compression gives effectively-constant amortized operations, which
matters: Heuristic 1 alone performs one union per co-spent address pair
across the whole chain.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable, Iterator


class UnionFind:
    """Disjoint sets with union-by-size and path compression."""

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        self._components = 0
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Ensure ``item`` exists (as its own singleton set)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1
            self._components += 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        """Number of items tracked."""
        return len(self._parent)

    @property
    def component_count(self) -> int:
        """Number of disjoint sets."""
        return self._components

    def find(self, item: Hashable) -> Hashable:
        """Canonical representative of ``item``'s set (adds if missing)."""
        if item not in self._parent:
            self.add(item)
            return item
        # Iterative find with path compression.
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets containing ``a`` and ``b``; returns the root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._components -= 1
        return ra

    def union_all(self, items: Iterable[Hashable]) -> Hashable | None:
        """Merge every item in ``items`` into one set; returns its root."""
        iterator = iter(items)
        try:
            first = next(iterator)
        except StopIteration:
            return None
        root = self.find(first)
        for item in iterator:
            root = self.union(root, item)
        return root

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True when ``a`` and ``b`` share a set."""
        if a not in self._parent or b not in self._parent:
            return False
        return self.find(a) == self.find(b)

    def size_of(self, item: Hashable) -> int:
        """Size of the set containing ``item``."""
        return self._size[self.find(item)]

    def components(self) -> dict[Hashable, list[Hashable]]:
        """Materialize all sets as ``root -> members``."""
        out: dict[Hashable, list[Hashable]] = defaultdict(list)
        for item in self._parent:
            out[self.find(item)].append(item)
        return dict(out)

    def iter_items(self) -> Iterator[Hashable]:
        """All tracked items."""
        return iter(self._parent)

    def copy(self) -> "UnionFind":
        """An independent copy (used to layer H2 on top of H1)."""
        clone = UnionFind()
        clone._parent = dict(self._parent)
        clone._size = dict(self._size)
        clone._components = self._components
        return clone

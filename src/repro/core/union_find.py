"""Disjoint-set forests: a generic one and an array-backed int one.

:class:`UnionFind` works over arbitrary hashable items (tags, test
fixtures, miscellaneous groupings).  The clustering hot path instead
runs on :class:`IntUnionFind`, which is backed by flat int64 arrays
indexed by the dense address ids the chain layer interns, and which
keeps an undo log so unions can be checkpointed and rolled back — the
mechanism behind the incremental engine's time-travel snapshots.  The
array backing is what makes :meth:`IntUnionFind.find_many` possible:
batch root resolution as a handful of whole-array gathers instead of
one pointer-chase loop per id.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable, Iterator

import numpy as np

from .arrays import IntVector


class UnionFind:
    """Disjoint sets with union-by-size and path compression."""

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        self._components = 0
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Ensure ``item`` exists (as its own singleton set)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1
            self._components += 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        """Number of items tracked."""
        return len(self._parent)

    @property
    def component_count(self) -> int:
        """Number of disjoint sets."""
        return self._components

    def find(self, item: Hashable) -> Hashable:
        """Canonical representative of ``item``'s set (adds if missing)."""
        if item not in self._parent:
            self.add(item)
            return item
        # Iterative find with path compression.
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def find_root(self, item: Hashable) -> Hashable | None:
        """Representative of ``item``'s set, or ``None`` if untracked.

        The read-only counterpart of :meth:`find`: querying an unknown
        item never adds it (so lookups cannot inflate the item count).
        """
        if item not in self._parent:
            return None
        return self.find(item)

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets containing ``a`` and ``b``; returns the root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._components -= 1
        return ra

    def union_all(self, items: Iterable[Hashable]) -> Hashable | None:
        """Merge every item in ``items`` into one set; returns its root."""
        iterator = iter(items)
        try:
            first = next(iterator)
        except StopIteration:
            return None
        root = self.find(first)
        for item in iterator:
            root = self.union(root, item)
        return root

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True when ``a`` and ``b`` share a set."""
        if a not in self._parent or b not in self._parent:
            return False
        return self.find(a) == self.find(b)

    def size_of(self, item: Hashable) -> int:
        """Size of the set containing ``item``."""
        return self._size[self.find(item)]

    def component_sizes(self) -> dict[Hashable, int]:
        """``root -> component size`` without materializing member lists.

        Roots are exactly the self-parented items, so this is a single
        scan of the parent map reading the maintained ``_size`` entries.
        """
        parent = self._parent
        size = self._size
        return {item: size[item] for item, p in parent.items() if p == item}

    def components(self) -> dict[Hashable, list[Hashable]]:
        """Materialize all sets as ``root -> members``."""
        out: dict[Hashable, list[Hashable]] = defaultdict(list)
        for item in self._parent:
            out[self.find(item)].append(item)
        return dict(out)

    def iter_items(self) -> Iterator[Hashable]:
        """All tracked items."""
        return iter(self._parent)

    def copy(self) -> "UnionFind":
        """An independent copy (used to layer H2 on top of H1)."""
        clone = UnionFind()
        clone._parent = dict(self._parent)
        clone._size = dict(self._size)
        clone._components = self._components
        return clone


class MergeCursor:
    """A consumer's position in an :class:`IntUnionFind` merge log.

    Created by :meth:`IntUnionFind.merge_cursor`; advanced by
    :meth:`IntUnionFind.drain_merges`.  ``retracted`` counts merges the
    cursor had already delivered that a later :meth:`IntUnionFind.rollback`
    undid — the next drain reports it so the consumer can reconcile
    (see ``drain_merges`` for the contract).
    """

    __slots__ = ("position", "retracted")

    def __init__(self, position: int) -> None:
        self.position = position
        self.retracted = 0


class IntUnionFind:
    """Array-backed disjoint sets over dense ids ``0..n-1`` with undo.

    Union-by-size **without path compression**: the structure is then a
    pure function of its union log, so any merge can be undone by
    resetting one parent pointer — which is what makes
    :meth:`checkpoint` / :meth:`rollback` / :meth:`replay` exact.  Finds
    are O(log n) worst case (union-by-size bounds tree depth), which the
    flat-array backing more than pays back against the dict-of-strings
    structure on the clustering hot path.  Parents and sizes live in
    :class:`~repro.core.arrays.IntVector` buffers; scalar methods bind
    the raw backing array (``_data``) in their loops — safe because a
    live id's parent is always a live id, so walks never enter the
    capacity tail — and :meth:`find_many` resolves whole id batches by
    iterated gather.

    Consumers that maintain *derived* per-cluster state (the service's
    differential cluster aggregates) subscribe to the merge log with
    :meth:`merge_cursor` / :meth:`drain_merges` instead of re-scanning
    members: each drained ``(absorbed_root, kept_root)`` entry is the
    exact fold order for merging the smaller cluster's aggregate into
    the larger's.
    """

    __slots__ = ("_parent", "_size", "_components", "_log", "_cursors")

    def __init__(self, n: int = 0) -> None:
        self._parent = IntVector()
        self._size = IntVector()
        self._components = 0
        self._log: list[tuple[int, int]] = []
        """Merge log: ``(absorbed_root, kept_root)`` per effective union."""
        self._cursors: list[MergeCursor] = []
        """Registered merge-log consumers (see :meth:`merge_cursor`)."""
        if n:
            self.ensure(n)

    def ensure(self, n: int) -> None:
        """Grow the universe so ids ``0..n-1`` exist (as singletons)."""
        current = len(self._parent)
        if n <= current:
            return
        self._parent.grow_to(n)
        self._parent.array[current:] = np.arange(current, n, dtype="<i8")
        self._size.grow_to(n, fill=1)
        self._components += n - current

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, item: int) -> bool:
        return 0 <= item < len(self._parent)

    @property
    def component_count(self) -> int:
        return self._components

    def find(self, item: int) -> int:
        """Root of ``item``'s set (no path compression; see class doc)."""
        parent = self._parent._data
        above = parent[item]
        while above != item:
            item = above
            above = parent[item]
        return int(item)

    def find_many(self, ids) -> np.ndarray:
        """Roots of every id in ``ids``, as a fresh int64 array.

        Iterated whole-batch gather: each pass replaces every id with
        its parent, so the loop runs max-tree-depth times — O(log n)
        passes of C-speed indexing instead of a Python pointer chase per
        id.  Read-only (no compression, like :meth:`find`), so it is
        safe between :meth:`checkpoint` and :meth:`rollback`.  The win
        is batch size: at tens of thousands of ids this is ~8× faster
        than a :meth:`find` loop; for a handful of ids prefer the loop.
        """
        roots = np.asarray(ids, dtype="<i8")
        parent = self._parent._data
        while True:
            above = parent[roots]
            if np.array_equal(above, roots):
                return above
            roots = above

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; logs the merge for undo."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        size = self._size._data
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        self._parent._data[rb] = ra
        size[ra] += size[rb]
        self._components -= 1
        self._log.append((rb, ra))
        return ra

    def union_many(self, items, partners=None) -> int | None:
        """Chain or bulk-pair unions, undo-log contract preserved.

        * ``union_many(items)`` — merge every id in ``items`` into one
          set; returns its root (the original chain form).
        * ``union_many(ids_a, ids_b)`` — the bulk batch entry point:
          union ``(ids_a[k], ids_b[k])`` for every k, in order, exactly
          as a sequential :meth:`union` loop would — identical merge
          log, so :meth:`checkpoint` / :meth:`rollback` / merge cursors
          observe nothing different.  Accepts any aligned int sequences
          (numpy int64 arrays are converted once, at C speed); the loop
          binds the parent/size/log structures to locals, walks with
          ``ndarray.item`` (plain Python ints, no numpy scalar churn),
          and memoizes the anchor's root across consecutive pairs that
          share it (the co-spend columns emit one anchor per tx), so
          the engine's per-block H1 pass pays one deep walk per
          distinct id — the same count as the per-tx chain form — and
          one call per *block*.  Returns ``None``.
        """
        if partners is None:
            iterator = iter(items)
            try:
                root = self.find(next(iterator))
            except StopIteration:
                return None
            for item in iterator:
                root = self.union(root, item)
            return root
        ids_a = items.tolist() if hasattr(items, "tolist") else items
        ids_b = partners.tolist() if hasattr(partners, "tolist") else partners
        if len(ids_a) != len(ids_b):
            raise ValueError(
                f"pair arrays misaligned: {len(ids_a)} vs {len(ids_b)}"
            )
        parent = self._parent._data
        size = self._size._data
        step = parent.item
        weight = size.item
        append = self._log.append
        merged = 0
        anchor = anchor_root = -1
        for a, b in zip(ids_a, ids_b):
            if a == anchor:
                # Consecutive pairs share their tx's anchor: restart the
                # walk at its last known root (still current — nothing
                # merged it away between consecutive pairs) instead of
                # re-walking from the leaf.
                a = anchor_root
            else:
                anchor = a
            above = step(a)
            while above != a:
                a = above
                above = step(a)
            anchor_root = a
            above = step(b)
            while above != b:
                b = above
                above = step(b)
            if a == b:
                continue
            sa = weight(a)
            sb = weight(b)
            if sa < sb:
                a, b = b, a
                sa, sb = sb, sa
            parent[b] = a
            size[a] = sa + sb
            merged += 1
            append((b, a))
            anchor_root = a
        self._components -= merged
        return None

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def size_of(self, item: int) -> int:
        return self._size[self.find(item)]

    @property
    def root_sizes(self) -> IntVector:
        """The per-id size vector (meaningful only at roots; junk
        elsewhere).  Exposed read-only for hot-path consumers that
        already hold roots — indexing this skips the :meth:`size_of`
        find, and item access returns plain Python ints.  Callers must
        not mutate it."""
        return self._size

    def root_ids(self) -> np.ndarray:
        """All component roots (self-parented ids), ascending — one
        vectorized scan, no per-id Python work."""
        parent = self._parent.array
        return np.nonzero(parent == np.arange(len(parent), dtype="<i8"))[0]

    def component_sizes(self) -> dict[int, int]:
        """``root -> component size`` (roots are self-parented ids)."""
        roots = self.root_ids()
        sizes = self._size.array[roots]
        return dict(zip(roots.tolist(), sizes.tolist()))

    def components(self) -> dict[int, list[int]]:
        """Materialize all sets as ``root -> member ids``."""
        n = len(self._parent)
        roots = self.find_many(np.arange(n, dtype="<i8")).tolist()
        out: dict[int, list[int]] = defaultdict(list)
        for i, root in enumerate(roots):
            out[root].append(i)
        return dict(out)

    # ------------------------------------------------------------------
    # checkpoint / rollback / replay
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """A token marking the current position in the merge log."""
        return len(self._log)

    def rollback(self, token: int) -> list[tuple[int, int]]:
        """Undo every union after ``token``; ids added by :meth:`ensure`
        stay (as singletons).  Returns the undone log entries in
        chronological order, suitable for :meth:`replay`.

        Merge cursors past ``token`` are pulled back to it and their
        ``retracted`` count bumped, so a drain-based consumer can never
        silently miss that merges it already folded were undone."""
        undone = self._log[token:]
        parent = self._parent._data
        size = self._size._data
        for absorbed, kept in reversed(undone):
            parent[absorbed] = absorbed
            size[kept] -= size[absorbed]
        self._components += len(undone)
        del self._log[token:]
        for cursor in self._cursors:
            if cursor.position > token:
                cursor.retracted += cursor.position - token
                cursor.position = token
        return undone

    def replay(self, entries: Iterable[tuple[int, int]]) -> None:
        """Re-apply previously recorded merges (chronological order).

        Entries must come from this structure's own log (via
        :meth:`rollback` or :meth:`log_prefix`) and be applied onto the
        exact state they were recorded against — each ``absorbed`` must
        currently be a root.  No finds are needed, so replay is O(1) per
        entry.
        """
        parent = self._parent._data
        size = self._size._data
        log = self._log
        n = 0
        for absorbed, kept in entries:
            parent[absorbed] = kept
            size[kept] += size[absorbed]
            log.append((absorbed, kept))
            n += 1
        self._components -= n

    def log_prefix(self, token: int) -> list[tuple[int, int]]:
        """The first ``token`` merge-log entries (chronological)."""
        return self._log[:token]

    def log_span(self, start: int, stop: int) -> list[tuple[int, int]]:
        """Merge-log entries between two checkpoint tokens (chronological)."""
        return self._log[start:stop]

    # ------------------------------------------------------------------
    # merge subscription (differential consumers)
    # ------------------------------------------------------------------

    def merge_cursor(self) -> MergeCursor:
        """Register a merge-log consumer at the current log position.

        The cursor sees only merges applied *after* registration; use
        :meth:`drain_merges` to collect them.  Cursors are not part of
        the durable state (:meth:`export_state` ignores them) and are
        not carried over by :meth:`copy` — a consumer re-registers
        against the structure it actually follows.
        """
        cursor = MergeCursor(len(self._log))
        self._cursors.append(cursor)
        return cursor

    def drain_merges(self, cursor: MergeCursor) -> tuple[int, list[tuple[int, int]]]:
        """Merges since the cursor's last drain, advancing the cursor.

        Returns ``(retracted, entries)``: ``entries`` are the
        ``(absorbed_root, kept_root)`` merges now in the log past the
        cursor, in fold order; ``retracted`` counts previously drained
        merges that a :meth:`rollback` undid since — the consumer must
        un-apply its last ``retracted`` folds before applying
        ``entries``.  A consumer that only drains at points where every
        interleaved rollback was balanced by an exact :meth:`replay`
        (the incremental engine's block boundaries) will observe the
        retracted merges re-delivered verbatim at the head of
        ``entries``, so fold-then-refold reconciliation is exact.
        """
        retracted = cursor.retracted
        entries = self._log[cursor.position:]
        cursor.position = len(self._log)
        cursor.retracted = 0
        return retracted, entries

    def release_cursor(self, cursor: MergeCursor) -> None:
        """Deregister a cursor (rollbacks stop adjusting it)."""
        try:
            self._cursors.remove(cursor)
        except ValueError:
            pass

    def copy(self) -> "IntUnionFind":
        """An independent copy (log included; merge cursors are not)."""
        clone = IntUnionFind()
        clone._parent = self._parent.copy()
        clone._size = self._size.copy()
        clone._components = self._components
        clone._log = list(self._log)
        return clone

    # ------------------------------------------------------------------
    # durable state (snapshot / restore)
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Plain-data state: parents, sizes, and the full merge log.

        The log is part of the state on purpose — the incremental
        engine's time travel replays log prefixes, so a restored
        structure must be able to answer every historical horizon the
        live one could.

        Arrays are exported as raw little-endian int64 bytes (the log
        as an ``(n, 2)`` row-major buffer): at a million addresses the
        parent/size/log columns dominate the engine and aggregate
        segments, and a flat-bytes export keeps snapshot cost one
        ``memcpy`` per column instead of a Python-object copy per id.
        :meth:`from_state` also accepts the pre-bytes list shape, so
        older snapshots stay restorable.
        """
        return {
            "parent": self._parent.tobytes(),
            "size": self._size.tobytes(),
            "components": self._components,
            "log": np.asarray(
                self._log if self._log else np.empty((0, 2)), dtype="<i8"
            ).tobytes(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "IntUnionFind":
        """Rebuild a structure from :meth:`export_state` output.

        Accepts both the columnar bytes shape and the legacy list shape
        (pre-kernel snapshots), detected by the payload type.
        """
        uf = cls()
        parent = state["parent"]
        if isinstance(parent, bytes):
            uf._parent = IntVector.from_bytes(parent)
            uf._size = IntVector.from_bytes(state["size"])
            uf._log = [
                (absorbed, kept)
                for absorbed, kept in np.frombuffer(state["log"], dtype="<i8")
                .reshape(-1, 2)
                .tolist()
            ]
        else:
            uf._parent = IntVector.from_list(parent)
            uf._size = IntVector.from_list(state["size"])
            uf._log = [tuple(entry) for entry in state["log"]]
        uf._components = state["components"]
        if len(uf._parent) != len(uf._size):
            raise ValueError("union-find state parents/sizes misaligned")
        return uf

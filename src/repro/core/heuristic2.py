"""Heuristic 2: one-time change address identification (§4.1–4.2).

The paper's new heuristic.  In the client idiom of the era, change goes
to a freshly generated address that is never re-used and never handed
out; such an address is therefore controlled by the same user as the
transaction's inputs.

An address is a candidate **one-time change address** for transaction T
when all four of the paper's conditions hold:

1. the address first appears in T (no previous transaction);
2. T is not a coin generation;
3. T has no self-change output (no output address is also an input
   address);
4. every *other* output address of T has appeared before T.

If more than one output satisfies (1) the change is ambiguous and
nothing is labeled.

§4.2 then adds a refinement ladder, each rung independently togglable
through :class:`Heuristic2Config` so the false-positive benches can
sweep them:

* **dice exception** — later inputs to the candidate that come solely
  from dice-game addresses do not void its one-timeness (Satoshi Dice
  pays winnings back to the betting address);
* **waiting period** — only label once the candidate has stayed
  input-free for a day / a week of chain time;
* **reused-change rejection** — skip transactions in which some output
  address has already received exactly one input (the "same change
  address used twice" pattern that built the Mt.Gox super-cluster);
* **prior-self-change rejection** — skip transactions whose candidate
  was used as a self-change address earlier.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from ..chain.index import ChainIndex
from ..chain.model import Transaction

SECONDS_PER_DAY = 86_400
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


@dataclass(frozen=True)
class Heuristic2Config:
    """Toggles for the §4.2 refinement ladder."""

    min_outputs: int = 2
    """Transactions with a single output have no change to find."""

    dice_exception: bool = True
    wait_seconds: int | None = SECONDS_PER_WEEK
    """Label only if the candidate receives no later input within this
    many seconds of chain time (None disables the wait)."""

    reject_reused_change: bool = True
    reject_prior_self_change: bool = True
    rejection_window_seconds: int | None = SECONDS_PER_WEEK
    """Recency scope for the two rejections: §4.2 observed the reused
    change / re-surfacing self-change patterns "especially within a
    short window of time", so only output addresses whose offending
    history falls within this window veto the transaction.  ``None``
    makes the rejections unconditional (strictly literal reading)."""

    @classmethod
    def naive(cls) -> "Heuristic2Config":
        """The unrefined heuristic as first defined in §4.1."""
        return cls(
            dice_exception=False,
            wait_seconds=None,
            reject_reused_change=False,
            reject_prior_self_change=False,
        )

    @classmethod
    def refined(cls) -> "Heuristic2Config":
        """The full ladder the paper settles on."""
        return cls()

    def with_wait_days(self, days: float | None) -> "Heuristic2Config":
        """A copy with the waiting period set to ``days`` days."""
        seconds = None if days is None else int(days * SECONDS_PER_DAY)
        return replace(self, wait_seconds=seconds)


@dataclass(frozen=True, slots=True)
class ChangeLabel:
    """One identified change output."""

    txid: bytes
    vout: int
    address: str
    height: int


@dataclass
class Heuristic2Result:
    """All change labels plus bookkeeping about skipped transactions."""

    labels: list[ChangeLabel] = field(default_factory=list)
    ambiguous: int = 0
    skipped_self_change: int = 0
    skipped_reused_change: int = 0
    skipped_prior_self_change: int = 0
    skipped_wait: int = 0
    skipped_dice_voided: int = 0

    @property
    def change_addresses(self) -> set[str]:
        return {label.address for label in self.labels}

    def __len__(self) -> int:
        return len(self.labels)


def is_dice_spend(
    index: ChainIndex, tx: Transaction, dice_addresses: frozenset[str]
) -> bool:
    """True when every resolvable sender of ``tx`` is a dice address.

    The single definition of the §4.2 dice-exception sender test, shared
    by the batch wait check, the incremental engine's forward voiding,
    and the false-positive estimator — so the three can never diverge.
    """
    senders = index.input_addresses(tx)
    return bool(senders) and all(s in dice_addresses for s in senders)


def find_candidate(
    index: ChainIndex, tx: Transaction, height: int, *, min_outputs: int = 2
) -> tuple[int | None, str]:
    """Apply the four base conditions to one transaction.

    Returns ``(vout, "ok")`` for an unambiguous candidate, or
    ``(None, reason)`` where reason is one of ``coinbase``,
    ``too_few_outputs``, ``self_change``, ``no_fresh_output``,
    ``ambiguous``, ``other_output_fresh``.
    """
    if tx.is_coinbase:
        return None, "coinbase"
    if len(tx.outputs) < min_outputs:
        return None, "too_few_outputs"
    input_addresses = set(index.input_addresses(tx))
    output_addresses = [out.address for out in tx.outputs]
    if any(addr in input_addresses for addr in output_addresses if addr):
        return None, "self_change"
    fresh: list[tuple[int, str]] = []
    seen_before = 0
    for vout, address in enumerate(output_addresses):
        if address is None:
            continue
        # "Appeared in a previous transaction" includes earlier in the
        # same block: appearances strictly before this tx's receive.
        prior = index.appearances_before(address, height)
        if prior == 0 and not _appeared_earlier_in_block(
            index, address, tx, height, vout
        ):
            fresh.append((vout, address))
        else:
            seen_before += 1
    if not fresh:
        return None, "no_fresh_output"
    if len(fresh) > 1:
        return None, "ambiguous"
    if seen_before != sum(1 for a in output_addresses if a) - 1:
        return None, "other_output_fresh"
    return fresh[0][0], "ok"


def _appeared_earlier_in_block(
    index: ChainIndex, address: str, tx: Transaction, height: int, vout: int
) -> bool:
    """Did ``address`` already appear in an earlier tx of the same block
    (or an earlier output of this tx)?"""
    record = index.address(address) if index.has_address(address) else None
    if record is None:
        return False
    this_pos = index.location(tx.txid).index_in_block
    start = record.receives_before(height)
    for receive in record.receives[start:]:
        if receive.height != height:
            break
        pos = index.location(receive.txid).index_in_block
        if pos < this_pos or (receive.txid == tx.txid and receive.vout < vout):
            return True
    return False


class Heuristic2:
    """Configurable one-time change identifier over a chain index."""

    def __init__(
        self,
        index: ChainIndex,
        config: Heuristic2Config | None = None,
        *,
        dice_addresses: frozenset[str] = frozenset(),
    ) -> None:
        self.index = index
        self.config = config or Heuristic2Config.refined()
        self.dice_addresses = dice_addresses

    # ------------------------------------------------------------------
    # refinement checks
    # ------------------------------------------------------------------

    def _later_inputs_void_one_timeness(
        self, address: str, height: int, *, as_of_height: int | None
    ) -> tuple[bool, bool]:
        """Check the candidate's receives within the waiting window.

        Returns ``(voided, dice_saved)``: ``voided`` when an input inside
        the wait window disqualifies the label; ``dice_saved`` when such
        inputs existed but were excused by the dice exception.  With no
        waiting period configured the label is immediate (no lookahead),
        which is the §4.1 naive behaviour.
        """
        if self.config.wait_seconds is None:
            return False, False
        record = self.index.address(address)
        later = [
            r
            for r in record.receives
            if r.height > height
            and (as_of_height is None or r.height <= as_of_height)
        ]
        deadline = self.index.timestamp_at(height) + self.config.wait_seconds
        horizon = (
            self.index.timestamp_at(as_of_height)
            if as_of_height is not None
            else self.index.timestamp_at(self.index.height)
        )
        later = [
            r
            for r in later
            if self.index.timestamp_at(r.height) <= min(deadline, horizon)
        ]
        if not later:
            return False, False
        if self.config.dice_exception and self.dice_addresses:
            if all(self._receive_is_from_dice(r) for r in later):
                return False, True
        return True, False

    def _receive_is_from_dice(self, receive) -> bool:
        """Is this receive a payment sent by a dice-game address?"""
        return is_dice_spend(
            self.index, self.index.tx(receive.txid), self.dice_addresses
        )

    def _within_window(self, event_height: int, height: int) -> bool:
        window = self.config.rejection_window_seconds
        if window is None:
            return True
        return (
            self.index.timestamp_at(height) - self.index.timestamp_at(event_height)
            <= window
        )

    def _some_output_is_reused_change(self, tx: Transaction, height: int) -> bool:
        """§4.2: 'an output address had already received only one input'
        — the same-change-address-used-twice pattern (recency-scoped;
        heavily reused addresses like dice games are exempt, they are
        plainly not one-time change)."""
        for out in tx.outputs:
            address = out.address
            if address is None or address in self.dice_addresses:
                continue
            if not self.index.has_address(address):
                continue
            record = self.index.address(address)
            prior = record.receives_before(height)
            if prior == 1 and self._within_window(
                record.receives[0].height, height
            ):
                return True
        return False

    def _some_output_was_self_change(self, tx: Transaction, height: int) -> bool:
        """§4.2: 'an output address had been previously used in a
        self-change transaction' — the pattern of self-change addresses
        later reappearing as ordinary change, which (with reused change)
        built the super-cluster.  Recency-scoped like the reused-change
        rejection; known dice addresses are exempt."""
        for out in tx.outputs:
            address = out.address
            if address is None or address in self.dice_addresses:
                continue
            for event_height in self.index.self_change_heights(address):
                if event_height < height and self._within_window(
                    event_height, height
                ):
                    return True
        return False

    # ------------------------------------------------------------------
    # main entry points
    # ------------------------------------------------------------------

    def identify_change_static(
        self, tx: Transaction
    ) -> tuple[ChangeLabel | None, str]:
        """The purely-past part of the label decision.

        Applies the four base conditions plus the two §4.2 rejections,
        all of which read only information at or before the
        transaction's own height — no waiting-period lookahead.  This is
        what the incremental engine evaluates as a block arrives (the
        wait check is then applied forward, as later receives stream
        in); :meth:`identify_change` layers the lookahead on top.
        """
        height = self.index.location(tx.txid).height
        vout, reason = find_candidate(
            self.index, tx, height, min_outputs=self.config.min_outputs
        )
        if vout is None:
            return None, reason
        address = tx.outputs[vout].address
        if self.config.reject_reused_change and self._some_output_is_reused_change(
            tx, height
        ):
            return None, "reused_change"
        if self.config.reject_prior_self_change and self._some_output_was_self_change(
            tx, height
        ):
            return None, "prior_self_change"
        return (
            ChangeLabel(txid=tx.txid, vout=vout, address=address, height=height),
            "ok",
        )

    def identify_change(
        self, tx: Transaction, *, as_of_height: int | None = None
    ) -> tuple[ChangeLabel | None, str]:
        """Identify the one-time change output of ``tx``, if any.

        ``as_of_height`` bounds the information used (temporal replay:
        the analysis pretends the chain ends there).  Returns
        ``(label, reason)``.
        """
        label, reason = self.identify_change_static(tx)
        if label is None:
            return None, reason
        voided, _dice_saved = self._later_inputs_void_one_timeness(
            label.address, label.height, as_of_height=as_of_height
        )
        if voided:
            return None, "wait_voided"
        return label, "ok"

    def run(self, *, as_of_height: int | None = None) -> Heuristic2Result:
        """Label change addresses across the whole chain (or a prefix)."""
        result = Heuristic2Result()
        for tx, location in self.index.iter_transactions():
            if as_of_height is not None and location.height > as_of_height:
                break
            label, reason = self.identify_change(tx, as_of_height=as_of_height)
            if label is not None:
                result.labels.append(label)
            elif reason == "ambiguous":
                result.ambiguous += 1
            elif reason == "self_change":
                result.skipped_self_change += 1
            elif reason == "reused_change":
                result.skipped_reused_change += 1
            elif reason == "prior_self_change":
                result.skipped_prior_self_change += 1
            elif reason == "wait_voided":
                result.skipped_wait += 1
        return result

    def iter_change_links(
        self, *, as_of_height: int | None = None
    ) -> Iterator[tuple[str, list[str]]]:
        """Yield ``(change_address, input_addresses)`` pairs for unioning."""
        for tx, location in self.index.iter_transactions():
            if as_of_height is not None and location.height > as_of_height:
                break
            label, _reason = self.identify_change(tx, as_of_height=as_of_height)
            if label is None:
                continue
            inputs = self.index.input_addresses(tx)
            if inputs:
                yield label.address, inputs


def dice_addresses_from_tags(tag_store, dice_services: tuple[str, ...]) -> frozenset[str]:
    """Addresses attributable to dice games, per the analyst's tags.

    The paper applied the dice exception using its *labeled* view of
    Satoshi Dice (tags + clustering), not ground truth; this helper
    mirrors that by reading a tag store.
    """
    out: set[str] = set()
    for tag in tag_store.all_tags():
        if tag.entity in dice_services:
            out.add(tag.address)
    return frozenset(out)

"""Super-cluster detection and diagnosis (§4.2).

Even after the dice exception and waiting period, the paper's first
refined Heuristic 2 produced a 1.6-million-address "super-cluster"
containing Mt. Gox, Instawallet, BitPay, *and* Silk Road — entities that
are certainly not one user.  Manual inspection traced it to two
patterns (change addresses used twice; self-change addresses later used
as regular change), and two further refinements dismantled it.

This module measures the same phenomenon: given a clustering and a set
of address tags, it finds clusters containing multiple distinct service
tags and reports the worst offenders, so the bench can show the naive
configuration *merging* the big services and the refined configuration
keeping them apart.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping

from .clustering import Clustering


@dataclass(frozen=True)
class MergedClusterInfo:
    """One cluster containing addresses tagged with ≥ 2 entities."""

    size: int
    entities: tuple[str, ...]


@dataclass
class SuperClusterReport:
    """Diagnosis of tag-merging clusters in one clustering."""

    largest_cluster_size: int
    merged_clusters: list[MergedClusterInfo]

    @property
    def worst(self) -> MergedClusterInfo | None:
        """The merged cluster with the most distinct entities."""
        if not self.merged_clusters:
            return None
        return max(self.merged_clusters, key=lambda m: (len(m.entities), m.size))

    @property
    def merged_entity_count(self) -> int:
        """Distinct entities appearing in any merged cluster."""
        seen: set[str] = set()
        for info in self.merged_clusters:
            seen.update(info.entities)
        return len(seen)

    def contains_merge_of(self, *entities: str) -> bool:
        """True if some single cluster holds tags of all given entities."""
        wanted = set(entities)
        return any(wanted <= set(info.entities) for info in self.merged_clusters)


def diagnose_superclusters(
    clustering: Clustering, tags: Mapping[str, str]
) -> SuperClusterReport:
    """Find clusters whose members carry tags of different entities.

    ``tags`` maps address → entity name (the analyst's view, e.g. from
    the re-identification attack — not ground truth).
    """
    entities_by_root: dict[object, set[str]] = defaultdict(set)
    for address, entity in tags.items():
        if address in clustering.uf:
            entities_by_root[clustering.uf.find(address)].add(entity)
    merged: list[MergedClusterInfo] = []
    for root, entities in entities_by_root.items():
        if len(entities) < 2:
            continue
        merged.append(
            MergedClusterInfo(
                size=clustering.uf.size_of(root),
                entities=tuple(sorted(entities)),
            )
        )
    merged.sort(key=lambda m: (-len(m.entities), -m.size))
    largest = clustering.largest_clusters(1)
    return SuperClusterReport(
        largest_cluster_size=largest[0][1] if largest else 0,
        merged_clusters=merged,
    )

"""Renderers for the paper's tables and figures.

Each bench prints its table/figure through these helpers, so the output
format mirrors the paper: Table 1's roster by category, §4's cluster
counts, the §4.2 false-positive ladder, Table 2's peel counts per
service per chain, Table 3's theft movements, and Figure 2's balance
series (as an ASCII chart — we are a terminal-first library).

The serving layer reports here too: :func:`render_query_workload`
summarizes a ``repro serve`` run (query mix, warm/memoized pass
timings, cache hit rate).  The query API it reports on — ``cluster_of``
/ ``balance_of`` / ``cluster_balance`` / ``trace_taint`` /
``top_clusters`` / ``cluster_profile``, answered from streaming
materialized views with a height-keyed LRU — is documented in
``repro/service/queries.py``; the CLI surface is ``repro query <kind>
<args>`` (one-shot) and ``repro serve [--script FILE | --generate N]``
(workload replay).
"""

from __future__ import annotations

from typing import Sequence

from .chain.model import format_btc


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Plain monospace table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_fp_ladder(estimates, *, title: str = "§4.2 false-positive ladder") -> str:
    """The refinement ladder: estimated vs (when known) true FP rates."""
    rows = []
    for estimate in estimates:
        true_rate = (
            f"{estimate.true_rate:.2%}" if estimate.true_rate is not None else "n/a"
        )
        rows.append(
            [
                estimate.name,
                estimate.labeled,
                estimate.estimated_false_positives,
                f"{estimate.estimated_rate:.2%}",
                true_rate,
            ]
        )
    return render_table(
        ["refinement", "labeled", "est FP", "est rate", "true rate"],
        rows,
        title=title,
    )


def render_table2(
    chain_summaries: list[dict[str, object]],
    *,
    title: str = "Table 2: tracking bitcoins from the hoard",
) -> str:
    """Per-chain peel counts/values per service.

    ``chain_summaries`` is a list (one per chain) of
    ``{service: ServicePeelSummary}`` dicts.
    """
    services: list[str] = []
    for summary in chain_summaries:
        for name in summary:
            if name not in services:
                services.append(name)
    services.sort()
    headers = ["Service"]
    for i in range(len(chain_summaries)):
        headers += [f"#{i + 1} peels", f"#{i + 1} BTC"]
    rows = []
    for service in services:
        row: list[object] = [service]
        for summary in chain_summaries:
            entry = summary.get(service)
            row.append(entry.peel_count if entry else "")
            row.append(format_btc(entry.total_value) if entry else "")
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_table3(
    rows: list[dict[str, object]],
    *,
    title: str = "Table 3: tracking thefts",
) -> str:
    """Theft rows: name, BTC, movement (paper vs recovered), exchanges."""
    return render_table(
        ["Theft", "BTC", "Movement(paper)", "Movement(found)", "Exchanges?"],
        [
            [
                r["name"],
                r["btc"],
                r["movement_paper"],
                r["movement_found"],
                "Yes" if r["reached_exchanges"] else "No",
            ]
            for r in rows
        ],
        title=title,
    )


def render_figure2(series, *, width: int = 72, title: str = "Figure 2") -> str:
    """ASCII rendering of the category balance percentage series."""
    lines = [f"{title}: balance per category, % of active bitcoins"]
    for category in series.by_category:
        pct = series.percentage(category)
        if not len(pct):
            continue
        peak = float(pct.max())
        sampled = _resample(pct, width)
        spark = "".join(_spark_char(v, peak) for v in sampled)
        lines.append(f"  {category:>12s} |{spark}| peak {peak:5.1f}%")
    lines.append(
        f"  {'x-axis':>12s}  height 0 .. {series.heights[-1]}"
        f"  ({len(series.heights)} samples)"
    )
    return "\n".join(lines)


def render_timeseries(
    points,
    *,
    samples: int = 12,
    width: int = 72,
    title: str = "Cluster growth over chain time",
) -> str:
    """The single-pass cluster-growth series: sparkline + sampled rows.

    ``points`` are :class:`~repro.core.incremental.ClusterSnapshot`
    records, one per height.
    """
    if not points:
        return f"{title}: (empty chain)"
    counts = [p.clusters for p in points]
    peak = float(max(counts))
    spark = "".join(_spark_char(v, peak) for v in _resample(counts, width))
    lines = [f"{title} ({len(points)} heights, one chain pass)"]
    lines.append(f"  {'clusters':>12s} |{spark}| peak {int(peak)}")
    stride = max(1, (len(points) - 1) // max(1, samples - 1)) if len(points) > 1 else 1
    sampled = list(points[::stride])
    if sampled[-1] is not points[-1]:
        sampled.append(points[-1])
    rows = [
        [p.height, p.address_count, p.h1_clusters, p.clusters, p.active_labels]
        for p in sampled
    ]
    lines.append(
        render_table(
            ["height", "addresses", "H1 clusters", "H1+H2 clusters", "live labels"],
            rows,
        )
    )
    return "\n".join(lines)


def render_query_workload(
    result, *, title: str = "Forensics query service workload"
) -> str:
    """Serving summary for one workload run: mix, timing, cache."""
    rows = [
        [kind, count]
        for kind, count in sorted(result.kind_counts.items())
    ]
    total = len(result.queries)
    report = render_table(["query kind", "count"], rows, title=title)
    first = result.first_pass_seconds
    repeat = result.repeat_pass_seconds
    cache = result.cache_stats
    stats = result.service_stats
    lines = [
        report,
        f"chain height: {stats['height']}  "
        f"addresses: {stats['addresses']}  "
        f"taint cases: {stats['taint_cases']}",
        f"warm views, cold memo: {total} queries in {first:.4f}s "
        f"({total / first:,.0f} q/s)" if first else
        f"warm views, cold memo: {total} queries",
        f"memoized repeat:       {total} queries in {repeat:.4f}s "
        f"({total / repeat:,.0f} q/s)" if repeat else
        f"memoized repeat:       {total} queries",
        f"cache: {cache['entries']} entries, "
        f"hit rate {cache['hit_rate']:.1%} "
        f"({cache['hits']} hits / {cache['misses']} misses)",
    ]
    return "\n".join(lines)


_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def _resample(values, width: int):
    if len(values) <= width:
        return list(values)
    step = len(values) / width
    return [values[int(i * step)] for i in range(width)]


def _spark_char(value: float, peak: float) -> str:
    if peak <= 0:
        return " "
    level = int(round(value / peak * (len(_SPARK_LEVELS) - 1)))
    return _SPARK_LEVELS[max(0, min(level, len(_SPARK_LEVELS) - 1))]

"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's experiments::

    python -m repro table1              # §3.1 service roster + attack
    python -m repro section4            # §4 cluster accounting
    python -m repro fp-ladder           # §4.2 refinement ladder
    python -m repro timeseries          # cluster growth at every height
    python -m repro table2              # §5 hoard peeling chains
    python -m repro table3              # §5 theft tracking
    python -m repro figure2             # category balances (ASCII chart)
    python -m repro ablation            # H2 refinement ablation
    python -m repro simulate --out DIR  # write a world as blk*.dat files

``timeseries`` runs the incremental streaming engine: one pass over the
chain yields the H1 / H1+H2 cluster counts and live change-label count
at *every* height (``--scenario`` picks the world, as for ``simulate``),
instead of re-clustering per cutoff.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import experiments
from .chain.blockfile import BlockFileWriter
from .chain.validation import validate_chain
from .simulation import scenarios

_SCENARIOS = {
    "default": scenarios.default_economy,
    "micro": scenarios.micro_economy,
    "silkroad": scenarios.silkroad_world,
    "theft": scenarios.theft_world,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Fistful of Bitcoins' (Meiklejohn et al., "
            "IMC 2013)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, help_text: str, *, seed_default: int = 0):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--seed", type=int, default=seed_default)
        return cmd

    add("table1", "re-identification attack roster (§3.1, Table 1)")
    add("section4", "clustering accounting (§4)")
    add("fp-ladder", "false-positive refinement ladder (§4.2)")
    add("table2", "hoard dissolution peel tracking (§5, Table 2)", seed_default=1)
    add("table3", "theft movement classification (§5, Table 3)", seed_default=2)
    add("figure2", "category balances over time (Figure 2)", seed_default=1)
    add("ablation", "H2 refinement ablation")

    series = sub.add_parser(
        "timeseries",
        help="cluster growth at every height (incremental engine, one pass)",
    )
    series.add_argument("--scenario", choices=sorted(_SCENARIOS), default="default")
    series.add_argument("--seed", type=int, default=0)

    sim = sub.add_parser("simulate", help="generate a world and write block files")
    sim.add_argument("--scenario", choices=sorted(_SCENARIOS), default="default")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--out", type=Path, required=True)

    stats = sub.add_parser("stats", help="profile a scenario's chain idioms")
    stats.add_argument("--scenario", choices=sorted(_SCENARIOS), default="micro")
    stats.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "table1":
        print(experiments.run_table1(seed=args.seed).report)
    elif args.command == "section4":
        print(experiments.run_section4(seed=args.seed).report)
    elif args.command == "fp-ladder":
        print(experiments.run_fp_ladder(seed=args.seed).report)
    elif args.command == "table2":
        print(experiments.run_table2(seed=args.seed).report)
    elif args.command == "table3":
        print(experiments.run_table3(seed=args.seed).report)
    elif args.command == "figure2":
        print(experiments.run_figure2(seed=args.seed).report)
    elif args.command == "ablation":
        print(experiments.run_ablation(seed=args.seed).report)
    elif args.command == "timeseries":
        world = _SCENARIOS[args.scenario](seed=args.seed)
        print(experiments.run_cluster_timeseries(world).report)
    elif args.command == "stats":
        from .chain.stats import compute_statistics, format_statistics

        world = _SCENARIOS[args.scenario](seed=args.seed)
        print(format_statistics(compute_statistics(world.index)))
    elif args.command == "simulate":
        world = _SCENARIOS[args.scenario](seed=args.seed)
        report = validate_chain(world.blocks)
        writer = BlockFileWriter(args.out)
        paths = writer.write_chain(world.blocks)
        print(
            f"scenario={args.scenario} seed={args.seed}: "
            f"{len(world.blocks)} blocks, {world.index.tx_count} txs, "
            f"{world.index.address_count} addresses "
            f"(validation {'OK' if report.ok else 'FAILED'})"
        )
        for path in paths:
            print(f"  wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's experiments::

    python -m repro table1              # §3.1 service roster + attack
    python -m repro section4            # §4 cluster accounting
    python -m repro fp-ladder           # §4.2 refinement ladder
    python -m repro timeseries          # cluster growth at every height
    python -m repro table2              # §5 hoard peeling chains
    python -m repro table3              # §5 theft tracking
    python -m repro figure2             # category balances (ASCII chart)
    python -m repro ablation            # H2 refinement ablation
    python -m repro simulate --out DIR  # write a world as blk*.dat files
    python -m repro query cluster-of 1Abc...   # one-shot forensics query
    python -m repro serve --generate 200       # serve a query workload

``timeseries`` runs the incremental streaming engine: one pass over the
chain yields the H1 / H1+H2 cluster counts and live change-label count
at *every* height (``--scenario`` picks the world, as for ``simulate``),
instead of re-clustering per cutoff.

``query`` and ``serve`` exercise the forensics query service (the
serving layer over the incremental engine + materialized views):

* ``repro query <kind> <args...>`` answers one query against a freshly
  built service — kinds are ``cluster-of ADDR``, ``balance-of ADDR``,
  ``cluster-balance ADDR``, ``cluster-profile ADDR``,
  ``top-clusters [N] [size|balance|activity]``, ``trace-taint LABEL``.
* ``repro serve`` replays a whole workload from warm state: either a
  script file (``--script FILE``, one query per line, ``#`` comments)
  or a generated mixed stream (``--generate N``); ``--dump FILE``
  writes the workload it ran so it can be replayed verbatim later.
* Both take ``--state-dir DIR`` for a transparent warm start: the first
  run writes ``DIR/blocks/blk*.dat`` plus a baseline snapshot under
  ``DIR/snapshots/``, and every later run restores the newest snapshot
  and tail-replays only the blocks past it — then checkpoints again on
  the way out, so watched taint cases and chain growth survive
  restarts.  A restarted service answers every query identically to a
  cold-built one (the storage test suite proves it per height).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from . import experiments
from .chain.blockfile import BlockFileWriter
from .chain.validation import validate_chain
from .obs import (
    JsonLinesLogger,
    MetricsRegistry,
    render_flight,
    render_health,
    render_snapshot,
)
from .service import ForensicsService, format_answer, parse_query
from .simulation import scenarios

_SCENARIOS = {
    "default": scenarios.default_economy,
    "micro": scenarios.micro_economy,
    "silkroad": scenarios.silkroad_world,
    "theft": scenarios.theft_world,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Fistful of Bitcoins' (Meiklejohn et al., "
            "IMC 2013)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, help_text: str, *, seed_default: int = 0):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--seed", type=int, default=seed_default)
        return cmd

    add("table1", "re-identification attack roster (§3.1, Table 1)")
    add("section4", "clustering accounting (§4)")
    add("fp-ladder", "false-positive refinement ladder (§4.2)")
    add("table2", "hoard dissolution peel tracking (§5, Table 2)", seed_default=1)
    add("table3", "theft movement classification (§5, Table 3)", seed_default=2)
    add("figure2", "category balances over time (Figure 2)", seed_default=1)
    add("ablation", "H2 refinement ablation")

    series = sub.add_parser(
        "timeseries",
        help="cluster growth at every height (incremental engine, one pass)",
    )
    series.add_argument("--scenario", choices=sorted(_SCENARIOS), default="default")
    series.add_argument("--seed", type=int, default=0)

    query = sub.add_parser(
        "query",
        help="one-shot forensics query against the serving layer",
    )
    query.add_argument("--scenario", choices=sorted(_SCENARIOS), default="default")
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--state-dir",
        type=Path,
        default=None,
        help="durable state directory: warm-start from its newest snapshot",
    )
    query.add_argument(
        "--blocks-only",
        action="store_true",
        help=(
            "trust the state dir's blocks/blk*.dat outright and skip the "
            "world build entirely (requires --state-dir with a snapshot "
            "from a previous full run)"
        ),
    )
    query.add_argument(
        "--metrics-dump",
        type=Path,
        default=None,
        help=(
            "record pipeline telemetry and write it as JSON "
            "(metric catalogue: docs/metrics.md)"
        ),
    )
    query.add_argument(
        "--log-json",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "append structured JSON-lines pipeline events to PATH "
            "(schema: docs/observability.md)"
        ),
    )
    query.add_argument(
        "tokens",
        nargs="+",
        metavar="QUERY",
        help="e.g. 'top-clusters 10 balance' or 'cluster-of <address>'",
    )

    serve = sub.add_parser(
        "serve",
        help="replay a query workload from warm materialized views",
    )
    serve.add_argument("--scenario", choices=sorted(_SCENARIOS), default="default")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--state-dir",
        type=Path,
        default=None,
        help="durable state directory: warm-start from its newest snapshot",
    )
    serve.add_argument(
        "--blocks-only",
        action="store_true",
        help=(
            "trust the state dir's blocks/blk*.dat outright and skip the "
            "world build entirely (requires --state-dir with a snapshot "
            "from a previous full run)"
        ),
    )
    serve.add_argument(
        "--script",
        type=Path,
        default=None,
        help="workload file: one query per line (# comments allowed)",
    )
    serve.add_argument(
        "--generate",
        type=int,
        default=200,
        metavar="N",
        help="generate an N-query mixed workload (ignored with --script)",
    )
    serve.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="extra memoized replay passes after the first",
    )
    serve.add_argument(
        "--dump",
        type=Path,
        default=None,
        help="write the executed workload as a replayable script",
    )
    serve.add_argument(
        "--metrics-dump",
        type=Path,
        default=None,
        help=(
            "record per-stage ingest/query telemetry (the chain is "
            "re-ingested through an instrumented index) and write it as "
            "JSON (metric catalogue: docs/metrics.md)"
        ),
    )
    serve.add_argument(
        "--log-json",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "append structured JSON-lines pipeline events to PATH "
            "(schema: docs/observability.md)"
        ),
    )

    metrics_cmd = sub.add_parser(
        "metrics",
        help="render a --metrics-dump JSON file as tables",
        description=(
            "Render the counters, gauges, histogram summaries, and "
            "flight-recorder spans captured by 'repro serve/query "
            "--metrics-dump PATH'.  See docs/metrics.md for what each "
            "metric means."
        ),
    )
    metrics_cmd.add_argument("dump", type=Path, metavar="DUMP_JSON")
    metrics_cmd.add_argument(
        "--flight",
        type=int,
        default=20,
        metavar="N",
        help="how many of the newest flight-recorder spans to show",
    )

    health_cmd = sub.add_parser(
        "health",
        help="render the component health rollup from a --metrics-dump file",
        description=(
            "Render the per-component health report (chain, engine, "
            "aggregates, views, cache, snapshots, audit) captured in a "
            "'repro serve/query --metrics-dump PATH' file.  See "
            "docs/observability.md for the health model."
        ),
    )
    health_cmd.add_argument("dump", type=Path, metavar="DUMP_JSON")

    doctor = sub.add_parser(
        "doctor",
        help="offline deep diagnostics over a --state-dir directory",
        description=(
            "Verify every snapshot segment checksum, restore the newest "
            "clean snapshot, tail-replay the block files, run the full "
            "invariant audit suite, and print a health report.  Exits "
            "non-zero when any problem is found.  Runbook: "
            "docs/observability.md."
        ),
    )
    doctor.add_argument(
        "--state-dir",
        type=Path,
        required=True,
        help="durable state directory (as passed to serve/query)",
    )
    doctor.add_argument(
        "--report",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the full diagnosis as JSON",
    )
    doctor.add_argument(
        "--log-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="append structured JSON-lines events from the diagnosis",
    )

    sim = sub.add_parser("simulate", help="generate a world and write block files")
    sim.add_argument("--scenario", choices=sorted(_SCENARIOS), default="default")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--out", type=Path, required=True)

    stats = sub.add_parser("stats", help="profile a scenario's chain idioms")
    stats.add_argument("--scenario", choices=sorted(_SCENARIOS), default="micro")
    stats.add_argument("--seed", type=int, default=0)
    return parser


def _load_workload_script(path: Path):
    """Parse a workload file: one query per line, ``#`` comments."""
    queries = []
    for line in path.read_text().splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            queries.append(parse_query(line.split()))
    return queries


def _read_dump(path: Path) -> dict | None:
    """Load a ``--metrics-dump`` JSON file, failing gracefully.

    Returns the payload dict, or ``None`` after printing a one-line
    error to stderr — missing files, empty files, malformed JSON, and
    non-object payloads all degrade to a clear message instead of a
    traceback.
    """
    try:
        text = path.read_text()
    except OSError as exc:
        print(f"error: cannot read {path}: {exc.strerror or exc}", file=sys.stderr)
        return None
    if not text.strip():
        print(f"error: {path} is empty (expected --metrics-dump JSON)", file=sys.stderr)
        return None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON ({exc})", file=sys.stderr)
        return None
    if not isinstance(payload, dict):
        print(
            f"error: {path} holds {type(payload).__name__}, expected a "
            f"--metrics-dump JSON object",
            file=sys.stderr,
        )
        return None
    return payload


def _open_logger(args):
    """The ``--log-json`` event logger, or ``None`` when not asked for.

    Opened at debug level so dumps carry the per-block ingest events;
    the JSON-lines consumer filters, not the producer."""
    path = getattr(args, "log_json", None)
    if path is None:
        return None
    return JsonLinesLogger(path, min_level="debug")


def _service_for(args, world, log=None):
    """The serving-layer service for ``query``/``serve``: a plain warm
    build, a durable warm start when ``--state-dir`` is given, or a
    restore that trusts the on-disk block files (``world`` unused and
    may be ``None``) with ``--blocks-only``.

    Returns ``(service, checkpoint, metrics)``: ``checkpoint``
    re-snapshots the (possibly mutated: new taint cases, tail growth)
    state on the way out — a no-op without ``--state-dir`` — and
    ``metrics`` is the enabled registry when ``--metrics-dump`` asked
    for one (``None`` otherwise).  With a registry and no state dir the
    chain is re-ingested block by block through an instrumented index,
    so the dump carries real per-stage ingest timings, not just query
    latencies.
    """
    metrics = (
        MetricsRegistry()
        if getattr(args, "metrics_dump", None) is not None
        else None
    )
    if getattr(args, "blocks_only", False):
        if args.state_dir is None:
            raise SystemExit("error: --blocks-only requires --state-dir")
        warm = experiments.warm_service_blocks_only(
            args.state_dir, metrics=metrics, log=log
        )
        print(f"[state-dir {args.state_dir}: {warm.report}]")
        return warm.service, warm.checkpoint, metrics
    if args.state_dir is None:
        if metrics is not None:
            service = experiments.instrumented_service(
                world, metrics=metrics, log=log
            )
        else:
            service = ForensicsService.from_world(world, log=log)
        return service, lambda: None, metrics
    warm = experiments.warm_service(
        world, args.state_dir, metrics=metrics, log=log
    )
    print(f"[state-dir {args.state_dir}: {warm.report}]")
    return warm.service, warm.checkpoint, metrics


def _write_metrics_dump(path: Path | None, metrics, service=None) -> None:
    """Serialize one run's registry + flight recorder (and, when the
    service is given, its component health rollup) as JSON."""
    if path is None or metrics is None:
        return
    # Health first: collecting it sets the health.* gauges, which the
    # registry snapshot below should carry.
    health = service.health_report().as_dict() if service is not None else None
    payload = {
        "metrics": metrics.snapshot(),
        "flight": metrics.flight.dump(),
    }
    if health is not None:
        payload["health"] = health
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[metrics written to {path}; render with 'repro metrics {path}']")


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "table1":
        print(experiments.run_table1(seed=args.seed).report)
    elif args.command == "section4":
        print(experiments.run_section4(seed=args.seed).report)
    elif args.command == "fp-ladder":
        print(experiments.run_fp_ladder(seed=args.seed).report)
    elif args.command == "table2":
        print(experiments.run_table2(seed=args.seed).report)
    elif args.command == "table3":
        print(experiments.run_table3(seed=args.seed).report)
    elif args.command == "figure2":
        print(experiments.run_figure2(seed=args.seed).report)
    elif args.command == "ablation":
        print(experiments.run_ablation(seed=args.seed).report)
    elif args.command == "timeseries":
        world = _SCENARIOS[args.scenario](seed=args.seed)
        print(experiments.run_cluster_timeseries(world).report)
    elif args.command == "query":
        # --blocks-only serves straight from the state dir: the whole
        # point is never paying the world simulation on a warm restart.
        world = (
            None if args.blocks_only else _SCENARIOS[args.scenario](seed=args.seed)
        )
        log = _open_logger(args)
        try:
            service, checkpoint, metrics = _service_for(args, world, log=log)
            query = parse_query(args.tokens)
            start = time.perf_counter()
            answer = service.answer(query)
            elapsed = time.perf_counter() - start
            print(format_answer(query, answer))
            print(
                f"[{args.scenario} @ height {service.height}, "
                f"answered warm in {elapsed * 1e3:.2f}ms]"
            )
            checkpoint()
            _write_metrics_dump(args.metrics_dump, metrics, service=service)
        finally:
            if log is not None:
                log.close()
    elif args.command == "serve":
        world = (
            None if args.blocks_only else _SCENARIOS[args.scenario](seed=args.seed)
        )
        log = _open_logger(args)
        service, checkpoint, metrics = _service_for(args, world, log=log)
        if args.script is not None:
            queries = _load_workload_script(args.script)
            if not service.taint.labels and any(
                q.kind == "trace_taint" for q in queries
            ):
                # Scripts dumped from generated workloads reference the
                # deterministic case-N labels; re-watch them.
                experiments.watch_synthetic_thefts(service)
            start = time.perf_counter()
            service.answer_many(queries)
            first = time.perf_counter() - start
            start = time.perf_counter()
            for _ in range(max(1, args.repeat)):
                service.answer_many(queries)
            repeat = (time.perf_counter() - start) / max(1, args.repeat)
            print(
                f"replayed {len(queries)} queries from {args.script}: "
                f"{first:.4f}s cold memo, {repeat:.4f}s memoized "
                f"(hit rate {service.cache.hit_rate:.1%})"
            )
        else:
            result = experiments.run_query_workload(
                world,
                seed=args.seed,
                n_queries=args.generate,
                repeats=max(1, args.repeat),
                service=service,
            )
            queries = result.queries
            print(result.report)
        if args.dump is not None:
            lines = [
                " ".join(str(part) for part in (query.kind, *query.args))
                for query in queries
            ]
            args.dump.write_text("\n".join(lines) + "\n")
            print(f"workload written to {args.dump}")
        checkpoint()
        _write_metrics_dump(args.metrics_dump, metrics, service=service)
        if log is not None:
            log.close()
    elif args.command == "metrics":
        payload = _read_dump(args.dump)
        if payload is None:
            return 1
        print(render_snapshot(payload.get("metrics", {})))
        print()
        print(render_flight(payload.get("flight", []), tail=args.flight))
    elif args.command == "health":
        payload = _read_dump(args.dump)
        if payload is None:
            return 1
        health = payload.get("health")
        if not isinstance(health, dict):
            print(
                f"error: {args.dump} has no health report (dumps carry one "
                f"when written by 'repro serve/query --metrics-dump')",
                file=sys.stderr,
            )
            return 1
        print(render_health(health))
    elif args.command == "doctor":
        from .obs.doctor import run_doctor

        log = _open_logger(args)
        try:
            if log is not None:
                report = run_doctor(args.state_dir, log=log)
            else:
                report = run_doctor(args.state_dir)
            print(report.render())
            if args.report is not None:
                args.report.write_text(
                    json.dumps(report.as_dict(), indent=2) + "\n"
                )
                print(f"[diagnosis written to {args.report}]")
            return report.exit_code
        finally:
            if log is not None:
                log.close()
    elif args.command == "stats":
        from .chain.stats import compute_statistics, format_statistics

        world = _SCENARIOS[args.scenario](seed=args.seed)
        print(format_statistics(compute_statistics(world.index)))
    elif args.command == "simulate":
        world = _SCENARIOS[args.scenario](seed=args.seed)
        report = validate_chain(world.blocks)
        writer = BlockFileWriter(args.out)
        paths = writer.write_chain(world.blocks)
        print(
            f"scenario={args.scenario} seed={args.seed}: "
            f"{len(world.blocks)} blocks, {world.index.tx_count} txs, "
            f"{world.index.address_count} addresses "
            f"(validation {'OK' if report.ok else 'FAILED'})"
        )
        for path in paths:
            print(f"  wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""The shared per-block ingest plan: one transaction walk per block.

Before this module, every streaming subscriber on the
:meth:`ChainIndex.subscribe <repro.chain.index.ChainIndex.subscribe>`
fan-out — the incremental clustering engine, the balance/activity/taint
views, the differential cluster aggregates — independently re-walked
``block.transactions`` and re-resolved the same per-tx id memos
(``input_address_ids`` / ``output_address_ids`` / ``input_spends``),
so a five-consumer service paid five transaction walks per ingested
block.  :func:`build_block_delta` runs that walk exactly once, inside
``add_block``, and flattens everything the whole observer fan-out needs
into one immutable, id-space :class:`BlockDelta`:

* per-tx sender-id tuples (:attr:`TxDelta.input_ids`) and the aligned
  ``(address id, value)`` spend debits (:attr:`TxDelta.input_spends`);
* per-tx output-address ids aligned with ``tx.outputs``
  (:attr:`TxDelta.output_ids`, -1 for exotic scripts) — the engine's
  §4.2 voiding pass reads these instead of re-extracting scripts;
* per-tx *deduplicated* involved-address lists (:attr:`TxDelta.involved`)
  so incidence consumers never build a throwaway ``set`` per tx;
* the block's flat balance event log (:attr:`BlockDelta.events`,
  ``(address id, signed delta)`` in fold order: per tx, spend debits
  then output credits) plus coinbase issuance (:attr:`BlockDelta.minted`);
* the block-level deduplicated involved set
  (:attr:`BlockDelta.involved`) and its maximum address id
  (:attr:`BlockDelta.max_id`) so consumers grow their dense arrays once
  per block instead of once per address.

Settled/voided H2 label churn is deliberately *not* here: it is a
function of clustering state, not of the raw block, and stays on
:meth:`IncrementalClusteringEngine.cluster_delta
<repro.core.incremental.IncrementalClusteringEngine.cluster_delta>` —
the aggregate view combines both deltas per block.

The delta carries the :class:`~repro.chain.model.Block` itself
(:attr:`BlockDelta.block`): legacy block-shaped observers are adapted
through it, and consumers that genuinely need a transaction object
(H2's static checks, taint propagation) read :attr:`TxDelta.tx` —
without ever re-walking ``block.transactions`` or re-resolving a memo.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import Block, Transaction


@dataclass(frozen=True, slots=True)
class TxDelta:
    """One transaction's flat, id-space ingest facts."""

    tx: Transaction
    """The transaction itself — for consumers that need more than ids
    (H2 static checks, dice-spend tests, taint propagation)."""

    is_coinbase: bool

    input_ids: tuple[int, ...]
    """Interned sender ids (deduplicated, insertion-ordered); empty for
    coinbases.  Mirrors :meth:`ChainIndex.input_address_ids`."""

    input_spends: tuple[tuple[int, int], ...]
    """``(address id, value)`` per consumed output, aligned with the
    non-coinbase inputs (-1 for exotic scripts).  Mirrors
    :meth:`ChainIndex.input_spends`."""

    output_ids: tuple[int, ...]
    """Output address ids aligned with ``tx.outputs`` (-1 where no
    address is extractable).  Mirrors
    :meth:`ChainIndex.output_address_ids`."""

    involved: tuple[int, ...]
    """Deduplicated ids appearing among the senders or the outputs
    (insertion-ordered: senders first).  The pre-built form of the
    per-tx ``set`` the activity and aggregate consumers used to
    allocate."""


@dataclass(frozen=True, slots=True)
class BlockDelta:
    """One block's complete ingest plan, shared by the whole fan-out."""

    block: Block
    txs: tuple[TxDelta, ...]

    events: tuple[tuple[int, int], ...]
    """Flat balance event log: ``(address id, signed satoshi delta)`` in
    fold order — per transaction, spend debits then output credits.
    Exactly the entries :class:`~repro.service.views.BalanceView` logs
    per height, so the view appends ``list(events)`` verbatim."""

    minted: int
    """Coinbase satoshis issued by the block."""

    involved: tuple[int, ...]
    """Deduplicated ids involved anywhere in the block (union of the
    per-tx ``involved`` lists, insertion-ordered)."""

    max_id: int
    """Largest address id involved in the block (-1 when none): dense
    consumers grow their arrays to ``max_id + 1`` once per block."""

    @property
    def height(self) -> int:
        return self.block.height

    @property
    def timestamp(self) -> int:
        return self.block.header.timestamp


def build_block_delta(index, block: Block) -> BlockDelta:
    """Flatten one ingested block into a :class:`BlockDelta`.

    ``block`` must already be in ``index`` — the per-tx memos the walk
    reads are seated at ingestion (and fall back to resolution on a
    lazily restored index).  This is the *only* transaction walk the
    streaming pipeline performs per block.
    """
    txs: list[TxDelta] = []
    events: list[tuple[int, int]] = []
    block_involved: dict[int, None] = {}
    minted = 0
    max_id = -1
    for tx in block.transactions:
        input_ids = index.input_address_ids(tx)
        output_ids = index.output_address_ids(tx)
        is_coinbase = tx.is_coinbase
        if is_coinbase:
            minted += tx.total_output_value
            input_spends: tuple[tuple[int, int], ...] = ()
        else:
            input_spends = index.input_spends(tx)
            for ident, value in input_spends:
                if ident >= 0:
                    events.append((ident, -value))
        involved = dict.fromkeys(input_ids)
        for out, ident in zip(tx.outputs, output_ids):
            if ident >= 0:
                events.append((ident, out.value))
                involved[ident] = None
        for ident in involved:
            if ident > max_id:
                max_id = ident
        block_involved.update(involved)
        txs.append(
            TxDelta(
                tx=tx,
                is_coinbase=is_coinbase,
                input_ids=input_ids,
                input_spends=input_spends,
                output_ids=output_ids,
                involved=tuple(involved),
            )
        )
    return BlockDelta(
        block=block,
        txs=tuple(txs),
        events=tuple(events),
        minted=minted,
        involved=tuple(block_involved),
        max_id=max_id,
    )

"""The shared per-block ingest plan: one transaction walk per block.

Before this module, every streaming subscriber on the
:meth:`ChainIndex.subscribe <repro.chain.index.ChainIndex.subscribe>`
fan-out — the incremental clustering engine, the balance/activity/taint
views, the differential cluster aggregates — independently re-walked
``block.transactions`` and re-resolved the same per-tx id memos
(``input_address_ids`` / ``output_address_ids`` / ``input_spends``),
so a five-consumer service paid five transaction walks per ingested
block.  :func:`build_block_delta` runs that walk exactly once, inside
``add_block``, and flattens everything the whole observer fan-out needs
into one immutable, id-space :class:`BlockDelta`:

* per-tx sender-id tuples (:attr:`TxDelta.input_ids`) and the aligned
  ``(address id, value)`` spend debits (:attr:`TxDelta.input_spends`);
* per-tx output-address ids aligned with ``tx.outputs``
  (:attr:`TxDelta.output_ids`, -1 for exotic scripts) — the engine's
  §4.2 voiding pass reads these instead of re-extracting scripts;
* per-tx *deduplicated* involved-address lists (:attr:`TxDelta.involved`)
  so incidence consumers never build a throwaway ``set`` per tx;
* the block's flat balance event log (:attr:`BlockDelta.events`,
  ``(address id, signed delta)`` in fold order: per tx, spend debits
  then output credits) plus coinbase issuance (:attr:`BlockDelta.minted`);
* the block-level deduplicated involved set
  (:attr:`BlockDelta.involved`) and its maximum address id
  (:attr:`BlockDelta.max_id`) so consumers grow their dense arrays once
  per block instead of once per address.

Alongside those tuple views the delta carries the same facts
*columnar*: typed, contiguous int64 buffers built once per block
(:attr:`BlockDelta.event_ids` / :attr:`BlockDelta.event_values`,
:attr:`BlockDelta.involved_ids`, :attr:`BlockDelta.involved_flat`, and
the H1 co-spend pair arrays :attr:`BlockDelta.h1_a` /
:attr:`BlockDelta.h1_b`).  These are what the vectorized fold kernels
consume — one ``np.add.at`` scatter per block instead of a per-element
Python loop — while the tuple views remain the scalar reference the
kernels are property-tested against.  The buffers are read-only: one
delta object is shared by the whole fan-out and may be retained by
lazily-flushed consumers.

Settled/voided H2 label churn is deliberately *not* here: it is a
function of clustering state, not of the raw block, and stays on
:meth:`IncrementalClusteringEngine.cluster_delta
<repro.core.incremental.IncrementalClusteringEngine.cluster_delta>` —
the aggregate view combines both deltas per block.

The delta carries the :class:`~repro.chain.model.Block` itself
(:attr:`BlockDelta.block`): legacy block-shaped observers are adapted
through it, and consumers that genuinely need a transaction object
(H2's static checks, taint propagation) read :attr:`TxDelta.tx` —
without ever re-walking ``block.transactions`` or re-resolving a memo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import Block, Transaction


def _as_int64(values) -> np.ndarray:
    """Read-only little-endian int64 column.

    Read-only because one delta object is shared by the whole observer
    fan-out (and may be retained by lazily-flushed consumers), so no
    subscriber can corrupt another's view of it.  (A local twin of
    :func:`repro.core.arrays.as_int64` — importing ``core`` from here
    would close an import cycle through ``core.clustering``.)
    """
    array = np.asarray(values, dtype="<i8")
    array.flags.writeable = False
    return array


@dataclass(frozen=True, slots=True)
class TxDelta:
    """One transaction's flat, id-space ingest facts."""

    tx: Transaction
    """The transaction itself — for consumers that need more than ids
    (H2 static checks, dice-spend tests, taint propagation)."""

    is_coinbase: bool

    input_ids: tuple[int, ...]
    """Interned sender ids (deduplicated, insertion-ordered); empty for
    coinbases.  Mirrors :meth:`ChainIndex.input_address_ids`."""

    input_spends: tuple[tuple[int, int], ...]
    """``(address id, value)`` per consumed output, aligned with the
    non-coinbase inputs (-1 for exotic scripts).  Mirrors
    :meth:`ChainIndex.input_spends`."""

    output_ids: tuple[int, ...]
    """Output address ids aligned with ``tx.outputs`` (-1 where no
    address is extractable).  Mirrors
    :meth:`ChainIndex.output_address_ids`."""

    involved: tuple[int, ...]
    """Deduplicated ids appearing among the senders or the outputs
    (insertion-ordered: senders first).  The pre-built form of the
    per-tx ``set`` the activity and aggregate consumers used to
    allocate."""


@dataclass(frozen=True, slots=True)
class BlockDelta:
    """One block's complete ingest plan, shared by the whole fan-out."""

    block: Block
    txs: tuple[TxDelta, ...]

    events: tuple[tuple[int, int], ...]
    """Flat balance event log: ``(address id, signed satoshi delta)`` in
    fold order — per transaction, spend debits then output credits.
    Exactly the entries :class:`~repro.service.views.BalanceView` logs
    per height, so the view appends ``list(events)`` verbatim."""

    minted: int
    """Coinbase satoshis issued by the block."""

    involved: tuple[int, ...]
    """Deduplicated ids involved anywhere in the block (union of the
    per-tx ``involved`` lists, insertion-ordered)."""

    max_id: int
    """Largest address id involved in the block (-1 when none): dense
    consumers grow their arrays to ``max_id + 1`` once per block."""

    event_ids: np.ndarray
    """Columnar :attr:`events`: the address-id column as a read-only
    int64 array, aligned with :attr:`event_values`."""

    event_values: np.ndarray
    """Columnar :attr:`events`: the signed satoshi-delta column."""

    involved_ids: np.ndarray
    """Columnar :attr:`involved` (block-level deduplicated ids)."""

    involved_flat: np.ndarray
    """Per-tx ``involved`` lists concatenated in tx order (duplicates
    across txs retained): an address involved in k of the block's txs
    appears k times — exactly the incidence multiset activity and
    aggregate folds count, scatterable in one ``np.add.at``."""

    h1_a: np.ndarray
    """H1 co-spend union pairs, first column: for every non-coinbase tx
    with senders ``(i0, i1, …, ik)``, the pairs ``(i0, i1) … (i0, ik)``
    in tx order.  Unioning these pairs left-to-right produces the *same
    merge log* as the per-tx ``union_many(input_ids)`` chain (the
    running root is always ``find(i0)``), so the engine batches the
    whole block through one
    :meth:`IntUnionFind.union_many(h1_a, h1_b)
    <repro.core.union_find.IntUnionFind.union_many>` call."""

    h1_b: np.ndarray
    """H1 co-spend union pairs, second column (aligned with
    :attr:`h1_a`)."""

    @property
    def height(self) -> int:
        return self.block.height

    @property
    def timestamp(self) -> int:
        return self.block.header.timestamp


def build_block_delta(index, block: Block) -> BlockDelta:
    """Flatten one ingested block into a :class:`BlockDelta`.

    ``block`` must already be in ``index`` — the per-tx memos the walk
    reads are seated at ingestion (and fall back to resolution on a
    lazily restored index).  This is the *only* transaction walk the
    streaming pipeline performs per block.
    """
    txs: list[TxDelta] = []
    event_ids: list[int] = []
    event_values: list[int] = []
    involved_flat: list[int] = []
    h1_a: list[int] = []
    h1_b: list[int] = []
    block_involved: dict[int, None] = {}
    minted = 0
    max_id = -1
    for tx in block.transactions:
        input_ids = index.input_address_ids(tx)
        output_ids = index.output_address_ids(tx)
        is_coinbase = tx.is_coinbase
        if is_coinbase:
            minted += tx.total_output_value
            input_spends: tuple[tuple[int, int], ...] = ()
        else:
            input_spends = index.input_spends(tx)
            for ident, value in input_spends:
                if ident >= 0:
                    event_ids.append(ident)
                    event_values.append(-value)
            if len(input_ids) > 1:
                first = input_ids[0]
                for partner in input_ids[1:]:
                    h1_a.append(first)
                    h1_b.append(partner)
        involved = dict.fromkeys(input_ids)
        for out, ident in zip(tx.outputs, output_ids):
            if ident >= 0:
                event_ids.append(ident)
                event_values.append(out.value)
                involved[ident] = None
        for ident in involved:
            if ident > max_id:
                max_id = ident
        involved_flat.extend(involved)
        block_involved.update(involved)
        txs.append(
            TxDelta(
                tx=tx,
                is_coinbase=is_coinbase,
                input_ids=input_ids,
                input_spends=input_spends,
                output_ids=output_ids,
                involved=tuple(involved),
            )
        )
    involved_tuple = tuple(block_involved)
    return BlockDelta(
        block=block,
        txs=tuple(txs),
        events=tuple(zip(event_ids, event_values)),
        minted=minted,
        involved=involved_tuple,
        max_id=max_id,
        event_ids=_as_int64(event_ids),
        event_values=_as_int64(event_values),
        involved_ids=_as_int64(involved_tuple),
        involved_flat=_as_int64(involved_flat),
        h1_a=_as_int64(h1_a),
        h1_b=_as_int64(h1_b),
    )

"""Hashing, addresses, and deterministic keypairs.

This module provides the cryptographic plumbing the paper's substrate
(a block-chain parser in the spirit of znort987/blockparser) relies on:

* ``sha256d`` / ``hash160`` — Bitcoin's standard double-SHA256 and
  RIPEMD160(SHA256(x)) digests.  When the host OpenSSL lacks RIPEMD160
  (removed in some builds), we substitute a SHA256-based 20-byte digest;
  the substitution is transparent to every caller because nothing in the
  analysis depends on RIPEMD160 specifically, only on a stable 20-byte
  address hash.
* base58check encoding/decoding with version bytes, exactly as Bitcoin
  uses for P2PKH addresses.
* :class:`KeyPair` — a deterministic simulation keypair.  Real ECDSA is
  unnecessary for reproducing the paper (clustering never verifies
  signatures cryptographically; it only reads graph structure), so keys
  are derived by hashing a seed.  Signatures are deterministic MACs that
  :func:`verify` checks, which keeps transaction "signing" meaningful in
  tests without an elliptic-curve dependency.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from .errors import Base58Error

# Version byte for pay-to-pubkey-hash addresses on Bitcoin mainnet.
P2PKH_VERSION = 0x00

_B58_ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"
_B58_INDEX = {c: i for i, c in enumerate(_B58_ALPHABET)}


def sha256(data: bytes) -> bytes:
    """Single SHA-256."""
    return hashlib.sha256(data).digest()


def sha256d(data: bytes) -> bytes:
    """Bitcoin's double SHA-256 (used for txids, block hashes, checksums)."""
    return hashlib.sha256(hashlib.sha256(data).digest()).digest()


def _ripemd160(data: bytes) -> bytes:
    """RIPEMD160 if available, else a truncated SHA256 stand-in."""
    try:
        h = hashlib.new("ripemd160")
    except ValueError:
        # OpenSSL 3 builds often drop legacy digests.  A stable 20-byte
        # digest is all the address layer needs.
        return hashlib.sha256(b"ripemd160:" + data).digest()[:20]
    h.update(data)
    return h.digest()


def hash160(data: bytes) -> bytes:
    """RIPEMD160(SHA256(data)) — the 20-byte pubkey hash in P2PKH."""
    return _ripemd160(sha256(data))


def base58_encode(data: bytes) -> str:
    """Encode raw bytes in base58 (no checksum)."""
    n = int.from_bytes(data, "big")
    out = []
    while n > 0:
        n, rem = divmod(n, 58)
        out.append(_B58_ALPHABET[rem])
    # Preserve leading zero bytes as '1' characters.
    pad = 0
    for byte in data:
        if byte == 0:
            pad += 1
        else:
            break
    return "1" * pad + "".join(reversed(out))


def base58_decode(text: str) -> bytes:
    """Decode base58 text to raw bytes (no checksum)."""
    n = 0
    for ch in text:
        if ch not in _B58_INDEX:
            raise Base58Error(f"invalid base58 character {ch!r}")
        n = n * 58 + _B58_INDEX[ch]
    raw = n.to_bytes((n.bit_length() + 7) // 8, "big") if n else b""
    pad = 0
    for ch in text:
        if ch == "1":
            pad += 1
        else:
            break
    return b"\x00" * pad + raw


def base58check_encode(payload: bytes, version: int = P2PKH_VERSION) -> str:
    """Encode ``version || payload || checksum`` in base58."""
    if not 0 <= version <= 0xFF:
        raise Base58Error(f"version byte out of range: {version}")
    body = bytes([version]) + payload
    return base58_encode(body + sha256d(body)[:4])


def base58check_decode(text: str) -> tuple[int, bytes]:
    """Decode base58check text, returning ``(version, payload)``.

    Raises :class:`Base58Error` on bad characters, short input, or a
    checksum mismatch.
    """
    raw = base58_decode(text)
    if len(raw) < 5:
        raise Base58Error("base58check payload too short")
    body, checksum = raw[:-4], raw[-4:]
    if sha256d(body)[:4] != checksum:
        raise Base58Error("base58check checksum mismatch")
    return body[0], body[1:]


def pubkey_to_address(pubkey: bytes, version: int = P2PKH_VERSION) -> str:
    """Derive the P2PKH address string for a public key."""
    return base58check_encode(hash160(pubkey), version)


def pubkey_hash_to_address(pkh: bytes, version: int = P2PKH_VERSION) -> str:
    """Encode a 20-byte pubkey hash as an address string."""
    if len(pkh) != 20:
        raise Base58Error(f"pubkey hash must be 20 bytes, got {len(pkh)}")
    return base58check_encode(pkh, version)


def address_to_pubkey_hash(address: str) -> bytes:
    """Decode an address string back to its 20-byte pubkey hash."""
    version, payload = base58check_decode(address)
    if len(payload) != 20:
        raise Base58Error(f"address payload must be 20 bytes, got {len(payload)}")
    return payload


def is_valid_address(address: str) -> bool:
    """Cheap validity check (alphabet + checksum + payload length)."""
    try:
        address_to_pubkey_hash(address)
    except Base58Error:
        return False
    return True


@dataclass(frozen=True)
class KeyPair:
    """A deterministic simulation keypair.

    The private key is the SHA256 of the seed; the public key is derived
    from the private key by hashing with a domain tag.  ``sign`` produces
    an HMAC over the message keyed by the private key, so signatures are
    deterministic, unforgeable without the seed, and verifiable given the
    keypair — sufficient for structural chain validation.
    """

    privkey: bytes
    pubkey: bytes

    @classmethod
    def from_seed(cls, seed: bytes | str) -> "KeyPair":
        """Derive a keypair deterministically from an arbitrary seed."""
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        priv = sha256(b"repro-priv:" + seed)
        # 33-byte "compressed pubkey"-shaped value: a 0x02 prefix plus a
        # 32-byte hash, matching the length real compressed keys have.
        pub = b"\x02" + sha256(b"repro-pub:" + priv)
        return cls(privkey=priv, pubkey=pub)

    @property
    def address(self) -> str:
        """The P2PKH address for this keypair."""
        return pubkey_to_address(self.pubkey)

    @property
    def pubkey_hash(self) -> bytes:
        """hash160 of the public key."""
        return hash160(self.pubkey)

    def sign(self, message: bytes) -> bytes:
        """Produce a 32-byte deterministic signature over ``message``."""
        return hmac.new(self.privkey, message, hashlib.sha256).digest()

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Check a signature produced by :meth:`sign`."""
        return hmac.compare_digest(self.sign(message), signature)

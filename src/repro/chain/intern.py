"""Address interning: dense integer ids for address strings.

Base58 address strings are long, heap-allocated, and hash slowly; the
clustering hot path performs millions of lookups and unions over them.
An :class:`AddressInterner` assigns every address a dense ``int`` id at
first sight (ids are allocated in chain-ingestion order, so the ids
``0..n_h-1`` are exactly the addresses seen by the end of height ``h``
— a property the incremental engine's time-travel snapshots rely on).

Downstream consumers carry ids through the union-find hot path and
translate back to strings only at the reporting edge.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class AddressInterner:
    """Bidirectional address-string ⇄ dense-int-id mapping."""

    __slots__ = ("_ids", "_addresses")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._addresses: list[str] = []

    @classmethod
    def from_addresses(cls, addresses: Iterable[str]) -> "AddressInterner":
        """Rebuild an interner from its id-ordered address table.

        ``addresses`` must be the exact first-sight-ordered table a
        previous interner produced (``list(interner)``) — this is the
        snapshot/restore path, where preserving every assigned id
        verbatim is what keeps restored id-space state (union-find,
        views) aligned with the chain.
        """
        interner = cls()
        table = interner._addresses
        ids = interner._ids
        for address in addresses:
            ids[address] = len(table)
            table.append(address)
        if len(ids) != len(table):
            raise ValueError("interner address table contains duplicates")
        return interner

    def intern(self, address: str) -> int:
        """The id for ``address``, allocating the next dense id if new."""
        ident = self._ids.get(address)
        if ident is None:
            ident = len(self._addresses)
            self._ids[address] = ident
            self._addresses.append(address)
        return ident

    def id_of(self, address: str) -> int | None:
        """The id for ``address`` if already interned (never allocates)."""
        return self._ids.get(address)

    def address_of(self, ident: int) -> str:
        """The address string for an id (raises ``IndexError`` if unknown)."""
        if ident < 0:
            raise IndexError(f"invalid address id {ident}")
        return self._addresses[ident]

    def addresses_of(self, idents: Iterable[int]) -> list[str]:
        """Bulk id → string translation (the reporting edge)."""
        addresses = self._addresses
        return [addresses[i] for i in idents]

    def __contains__(self, address: str) -> bool:
        return address in self._ids

    def __len__(self) -> int:
        return len(self._addresses)

    def __iter__(self) -> Iterator[str]:
        """Addresses in id (= first-sight) order."""
        return iter(self._addresses)

"""Block-chain object model: outpoints, transactions, blocks.

Value semantics follow Bitcoin: amounts are integer satoshis
(1 BTC = 100,000,000 satoshis), txids and block hashes are the
double-SHA256 of the serialized structure, displayed reversed-hex as the
network convention dictates.  Identifiers are computed lazily and cached,
because clustering touches every transaction many times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator

from . import crypto, script as script_mod
from .errors import BlockStructureError

COIN = 100_000_000
"""Satoshis per bitcoin."""

MAX_MONEY = 21_000_000 * COIN
"""Total supply cap, as in Bitcoin."""

HALVING_INTERVAL = 210_000
"""Blocks between subsidy halvings (50 BTC → 25 BTC at height 210,000)."""

COINBASE_TXID = b"\x00" * 32
"""The all-zero previous txid that marks a coinbase input."""

COINBASE_VOUT = 0xFFFFFFFF
"""The sentinel previous vout of a coinbase input."""


def block_subsidy(height: int, *, halving_interval: int = HALVING_INTERVAL) -> int:
    """Coin-generation reward at ``height`` in satoshis.

    Mirrors Bitcoin: 50 BTC, halving every ``halving_interval`` blocks,
    reaching zero after 64 halvings.
    """
    halvings = height // halving_interval
    if halvings >= 64:
        return 0
    return (50 * COIN) >> halvings


def btc(amount: float | int) -> int:
    """Convert a BTC amount to satoshis (rounding to the nearest satoshi)."""
    return int(round(amount * COIN))


def format_btc(satoshis: int) -> str:
    """Render satoshis as a human BTC string, trimming trailing zeros."""
    sign = "-" if satoshis < 0 else ""
    whole, frac = divmod(abs(satoshis), COIN)
    if frac == 0:
        return f"{sign}{whole}"
    return f"{sign}{whole}.{frac:08d}".rstrip("0")


@dataclass(frozen=True, slots=True)
class OutPoint:
    """Reference to a transaction output: ``(txid, vout)``."""

    txid: bytes
    vout: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OutPoint({self.txid[::-1].hex()[:16]}…:{self.vout})"

    @property
    def is_coinbase(self) -> bool:
        """True for the null outpoint of a coinbase input."""
        return self.txid == COINBASE_TXID and self.vout == COINBASE_VOUT


@dataclass(frozen=True, slots=True)
class TxIn:
    """Transaction input spending a previous output."""

    prevout: OutPoint
    script_sig: bytes = b""
    sequence: int = 0xFFFFFFFF

    @property
    def is_coinbase(self) -> bool:
        """True when this input creates new coins."""
        return self.prevout.is_coinbase


class _AddressUnresolved:
    """Sentinel type for a :class:`TxOut` whose address slot is still
    cold.  The sentinel is the class object itself: pickle stores
    classes by reference, so a ``TxOut`` pickled before its first
    ``address`` access round-trips with the memo still cold (a plain
    ``object()`` sentinel would unpickle as a fresh object that fails
    the identity check and masquerade as the address)."""


_ADDRESS_UNRESOLVED = _AddressUnresolved


@dataclass(frozen=True, slots=True)
class TxOut:
    """Transaction output carrying ``value`` satoshis locked by a script."""

    value: int
    script_pubkey: bytes
    _address: object = field(
        default=_ADDRESS_UNRESOLVED, init=False, repr=False, compare=False
    )

    @property
    def address(self) -> str | None:
        """The address this output pays, or ``None`` for exotic scripts.

        Memoized per output: script → address extraction ends in a
        base58check encode, and the ingest pipeline, heuristics, and
        reporting edges all resolve the same outputs repeatedly.
        """
        cached = self._address
        if cached is _ADDRESS_UNRESOLVED:
            cached = script_mod.extract_address(self.script_pubkey)
            object.__setattr__(self, "_address", cached)
        return cached


@dataclass(frozen=True)
class Transaction:
    """An immutable transaction.

    The ``txid`` property is the double-SHA256 of the wire serialization
    (computed lazily; ``cached_property`` keeps the hot clustering loops
    from re-serializing).
    """

    inputs: tuple[TxIn, ...]
    outputs: tuple[TxOut, ...]
    version: int = 1
    lock_time: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.inputs, tuple):
            object.__setattr__(self, "inputs", tuple(self.inputs))
        if not isinstance(self.outputs, tuple):
            object.__setattr__(self, "outputs", tuple(self.outputs))

    @cached_property
    def txid(self) -> bytes:
        """Internal byte order transaction id (double SHA-256 of the wire form)."""
        from .serialize import serialize_tx  # local import to avoid a cycle

        return crypto.sha256d(serialize_tx(self))

    @property
    def txid_hex(self) -> str:
        """Display (reversed) hex txid, as explorers show it."""
        return self.txid[::-1].hex()

    @property
    def is_coinbase(self) -> bool:
        """True when the transaction mints new coins."""
        return len(self.inputs) == 1 and self.inputs[0].is_coinbase

    @property
    def total_output_value(self) -> int:
        """Sum of output values in satoshis."""
        return sum(out.value for out in self.outputs)

    def output_addresses(self) -> list[str | None]:
        """Addresses paid by each output (``None`` for unrecognized scripts)."""
        return [out.address for out in self.outputs]

    def outpoint(self, vout: int) -> OutPoint:
        """The :class:`OutPoint` referencing output ``vout`` of this tx."""
        if not 0 <= vout < len(self.outputs):
            raise IndexError(f"vout {vout} out of range for {self.txid_hex}")
        return OutPoint(self.txid, vout)

    def __hash__(self) -> int:
        return hash(self.txid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction({self.txid_hex[:16]}…, "
            f"{len(self.inputs)} in, {len(self.outputs)} out)"
        )


@dataclass(frozen=True)
class BlockHeader:
    """80-byte block header, hashed to produce the block id."""

    version: int
    prev_hash: bytes
    merkle_root: bytes
    timestamp: int
    bits: int = 0x1D00FFFF
    nonce: int = 0

    @cached_property
    def hash(self) -> bytes:
        """Internal byte order block hash."""
        from .serialize import serialize_header

        return crypto.sha256d(serialize_header(self))

    @property
    def hash_hex(self) -> str:
        """Display (reversed) hex block hash."""
        return self.hash[::-1].hex()


def merkle_root(txids: list[bytes]) -> bytes:
    """Compute the Bitcoin merkle root over a list of txids.

    Uses Bitcoin's rule of duplicating the last node at odd levels.  An
    empty list is a structural error (every block has a coinbase).
    """
    if not txids:
        raise BlockStructureError("cannot compute merkle root of zero txids")
    level = list(txids)
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        level = [
            crypto.sha256d(level[i] + level[i + 1]) for i in range(0, len(level), 2)
        ]
    return level[0]


@dataclass(frozen=True)
class Block:
    """A block: header plus ordered transactions (coinbase first)."""

    header: BlockHeader
    transactions: tuple[Transaction, ...]
    height: int

    def __post_init__(self) -> None:
        if not isinstance(self.transactions, tuple):
            object.__setattr__(self, "transactions", tuple(self.transactions))

    @classmethod
    def assemble(
        cls,
        *,
        height: int,
        prev_hash: bytes,
        timestamp: int,
        transactions: list[Transaction] | tuple[Transaction, ...],
        version: int = 2,
        bits: int = 0x1D00FFFF,
        nonce: int = 0,
    ) -> "Block":
        """Build a block with a correct merkle root over ``transactions``."""
        txs = tuple(transactions)
        if not txs:
            raise BlockStructureError("a block must contain a coinbase transaction")
        header = BlockHeader(
            version=version,
            prev_hash=prev_hash,
            merkle_root=merkle_root([tx.txid for tx in txs]),
            timestamp=timestamp,
            bits=bits,
            nonce=nonce,
        )
        return cls(header=header, transactions=txs, height=height)

    @property
    def hash(self) -> bytes:
        """Internal byte order block hash."""
        return self.header.hash

    @property
    def hash_hex(self) -> str:
        """Display hex block hash."""
        return self.header.hash_hex

    @property
    def coinbase(self) -> Transaction:
        """The block's coinbase (first) transaction."""
        return self.transactions[0]

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    def __len__(self) -> int:
        return len(self.transactions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Block(height={self.height}, {len(self.transactions)} txs)"


GENESIS_PREV_HASH = b"\x00" * 32
"""Previous-hash value of the genesis block."""

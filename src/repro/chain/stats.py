"""Chain-level usage statistics.

The measurements the paper quotes about the network's idioms of use —
"23% of all transactions in the first half of 2013 used self-change
addresses", the prevalence of address reuse, transaction shapes — are
themselves chain-derived numbers.  This module computes them from a
:class:`~repro.chain.index.ChainIndex`, both to validate that the
simulator reproduces the idioms it claims to (tests assert the
self-change share tracks the configured policy) and as a general
profiling tool for any indexed chain.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .index import ChainIndex


@dataclass
class ChainStatistics:
    """Aggregate usage statistics over one chain."""

    blocks: int = 0
    transactions: int = 0
    coinbases: int = 0
    total_inputs: int = 0
    total_outputs: int = 0
    self_change_txs: int = 0
    multi_input_txs: int = 0
    single_output_txs: int = 0
    two_output_txs: int = 0
    input_count_histogram: Counter = field(default_factory=Counter)
    output_count_histogram: Counter = field(default_factory=Counter)
    address_use_histogram: Counter = field(default_factory=Counter)
    """receive-count -> number of addresses with that many receives."""

    @property
    def non_coinbase_txs(self) -> int:
        return self.transactions - self.coinbases

    @property
    def self_change_share(self) -> float:
        """Share of spending transactions with a self-change output
        (the paper's 23% figure for early 2013)."""
        if not self.non_coinbase_txs:
            return 0.0
        return self.self_change_txs / self.non_coinbase_txs

    @property
    def multi_input_share(self) -> float:
        """Share of spending transactions H1 can learn from."""
        if not self.non_coinbase_txs:
            return 0.0
        return self.multi_input_txs / self.non_coinbase_txs

    @property
    def single_use_address_share(self) -> float:
        """Share of addresses used exactly once — the 'fresh address'
        idiom H2 depends on."""
        total = sum(self.address_use_histogram.values())
        if not total:
            return 0.0
        return self.address_use_histogram[1] / total

    @property
    def mean_inputs(self) -> float:
        if not self.non_coinbase_txs:
            return 0.0
        return self.total_inputs / self.non_coinbase_txs

    @property
    def mean_outputs(self) -> float:
        if not self.transactions:
            return 0.0
        return self.total_outputs / self.transactions


def compute_statistics(
    index: ChainIndex, *, up_to_height: int | None = None
) -> ChainStatistics:
    """Profile a chain (optionally only a prefix)."""
    stats = ChainStatistics()
    seen_heights: set[int] = set()
    for tx, location in index.iter_transactions():
        if up_to_height is not None and location.height > up_to_height:
            break
        seen_heights.add(location.height)
        stats.transactions += 1
        stats.total_outputs += len(tx.outputs)
        stats.output_count_histogram[len(tx.outputs)] += 1
        if tx.is_coinbase:
            stats.coinbases += 1
            continue
        stats.total_inputs += len(tx.inputs)
        stats.input_count_histogram[len(tx.inputs)] += 1
        if len(tx.inputs) >= 2:
            stats.multi_input_txs += 1
        if len(tx.outputs) == 1:
            stats.single_output_txs += 1
        elif len(tx.outputs) == 2:
            stats.two_output_txs += 1
        input_addresses = set(index.input_addresses(tx))
        if any(
            out.address in input_addresses
            for out in tx.outputs
            if out.address is not None
        ):
            stats.self_change_txs += 1
    stats.blocks = len(seen_heights)
    for record in index.iter_addresses():
        receives = (
            len(record.receives)
            if up_to_height is None
            else len(record.receives_at_or_before(up_to_height))
        )
        if receives:
            stats.address_use_histogram[receives] += 1
    return stats


def format_statistics(stats: ChainStatistics) -> str:
    """Human-readable profile (used by the CLI)."""
    lines = [
        f"blocks:               {stats.blocks}",
        f"transactions:         {stats.transactions} "
        f"({stats.coinbases} coinbases)",
        f"mean inputs/tx:       {stats.mean_inputs:.2f}",
        f"mean outputs/tx:      {stats.mean_outputs:.2f}",
        f"multi-input share:    {stats.multi_input_share:.1%}  (H1 signal)",
        f"self-change share:    {stats.self_change_share:.1%}  "
        f"(paper: ~23% in early 2013)",
        f"single-use addresses: {stats.single_use_address_share:.1%}  "
        f"(H2's fresh-address idiom)",
    ]
    return "\n".join(lines)

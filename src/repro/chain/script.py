"""Minimal Bitcoin script subset: building and recognizing P2PKH / P2PK.

The clustering heuristics in the paper operate on *addresses*, so the
substrate only needs to (a) lock outputs to an address, (b) recognize the
address an output pays, and (c) carry enough unlocking data that inputs
can be attributed to a public key.  We implement the two output script
templates that covered essentially all transactions in the 2009–2013
block chain the paper studies:

* **P2PKH** — ``OP_DUP OP_HASH160 <20-byte pkh> OP_EQUALVERIFY OP_CHECKSIG``
* **P2PK**  — ``<pubkey> OP_CHECKSIG`` (the form coinbases used early on)

Opcode byte values match Bitcoin's, so serialized scripts are faithful.
"""

from __future__ import annotations

from . import crypto
from .errors import ScriptError

OP_DUP = 0x76
OP_HASH160 = 0xA9
OP_EQUALVERIFY = 0x88
OP_CHECKSIG = 0xAC
OP_RETURN = 0x6A

_PUSH_MAX = 0x4B  # direct push opcodes 0x01..0x4b


def push_data(data: bytes) -> bytes:
    """Encode a direct data push (only the short form is needed here)."""
    if not data:
        raise ScriptError("refusing to push empty data")
    if len(data) > _PUSH_MAX:
        raise ScriptError(f"push too long for direct opcode: {len(data)} bytes")
    return bytes([len(data)]) + data


def p2pkh_script(pubkey_hash: bytes) -> bytes:
    """Build the canonical pay-to-pubkey-hash locking script."""
    if len(pubkey_hash) != 20:
        raise ScriptError(f"pubkey hash must be 20 bytes, got {len(pubkey_hash)}")
    return (
        bytes([OP_DUP, OP_HASH160])
        + push_data(pubkey_hash)
        + bytes([OP_EQUALVERIFY, OP_CHECKSIG])
    )


def p2pk_script(pubkey: bytes) -> bytes:
    """Build the pay-to-pubkey locking script used by early coinbases."""
    return push_data(pubkey) + bytes([OP_CHECKSIG])


def p2pkh_script_for_address(address: str) -> bytes:
    """Build a P2PKH locking script paying ``address``."""
    return p2pkh_script(crypto.address_to_pubkey_hash(address))


def sig_script(signature: bytes, pubkey: bytes) -> bytes:
    """Build the unlocking script ``<sig> <pubkey>`` for a P2PKH input."""
    return push_data(signature) + push_data(pubkey)


def coinbase_script(height: int, extra: bytes = b"") -> bytes:
    """Build a coinbase input script embedding the block height (BIP 34)."""
    if height < 0:
        raise ScriptError("height must be non-negative")
    payload = height.to_bytes(4, "little") + extra
    return push_data(payload[: _PUSH_MAX])


def classify(script_pubkey: bytes) -> str:
    """Classify a locking script as ``p2pkh``, ``p2pk``, ``op_return``,
    or ``nonstandard``."""
    if (
        len(script_pubkey) == 25
        and script_pubkey[0] == OP_DUP
        and script_pubkey[1] == OP_HASH160
        and script_pubkey[2] == 20
        and script_pubkey[23] == OP_EQUALVERIFY
        and script_pubkey[24] == OP_CHECKSIG
    ):
        return "p2pkh"
    if (
        len(script_pubkey) >= 3
        and 1 <= script_pubkey[0] <= _PUSH_MAX
        and len(script_pubkey) == script_pubkey[0] + 2
        and script_pubkey[-1] == OP_CHECKSIG
    ):
        return "p2pk"
    if script_pubkey[:1] == bytes([OP_RETURN]):
        return "op_return"
    return "nonstandard"


def extract_address(script_pubkey: bytes) -> str | None:
    """Return the address a locking script pays, or ``None``.

    P2PKH scripts yield the encoded pubkey hash; P2PK scripts yield the
    address of the embedded public key (matching how block explorers and
    the paper's tooling canonicalize early coinbase outputs).
    """
    kind = classify(script_pubkey)
    if kind == "p2pkh":
        return crypto.pubkey_hash_to_address(script_pubkey[3:23])
    if kind == "p2pk":
        pubkey = script_pubkey[1:-1]
        return crypto.pubkey_to_address(pubkey)
    return None


def parse_sig_script(script_sig: bytes) -> tuple[bytes, bytes]:
    """Split a P2PKH unlocking script into ``(signature, pubkey)``.

    Raises :class:`ScriptError` if the script is not two direct pushes.
    """
    if not script_sig:
        raise ScriptError("empty scriptSig")
    sig_len = script_sig[0]
    if sig_len == 0 or sig_len > _PUSH_MAX or len(script_sig) < 1 + sig_len + 1:
        raise ScriptError("malformed scriptSig: bad signature push")
    signature = script_sig[1 : 1 + sig_len]
    rest = script_sig[1 + sig_len :]
    pub_len = rest[0]
    if pub_len == 0 or pub_len > _PUSH_MAX or len(rest) != 1 + pub_len:
        raise ScriptError("malformed scriptSig: bad pubkey push")
    return signature, rest[1:]

"""blk*.dat-style block files.

Bitcoin Core appends each block to rolling ``blkNNNNN.dat`` files as
``magic || u32 length || raw block``.  The paper's substrate (a block
parser like znort987/blockparser) consumes exactly these files; we write
and read the same framing so the simulate→serialize→reparse pipeline
exercises a genuine binary parse, including resilience to a truncated
final record (which real block files exhibit after unclean shutdowns).
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Iterable, Iterator

from .errors import SerializationError, TruncatedDataError
from .model import Block
from .serialize import ByteReader, deserialize_block, serialize_block

MAINNET_MAGIC = b"\xf9\xbe\xb4\xd9"
"""Bitcoin mainnet network magic, little-endian on the wire."""

DEFAULT_MAX_FILE_SIZE = 128 * 1024 * 1024
_LENGTH_FMT = "<I"


class BlockFileWriter:
    """Append blocks to ``blkNNNNN.dat`` files under a directory.

    Rolls over to a new file once the current one would exceed
    ``max_file_size``, mirroring Bitcoin Core's behaviour.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        magic: bytes = MAINNET_MAGIC,
        max_file_size: int = DEFAULT_MAX_FILE_SIZE,
    ) -> None:
        if len(magic) != 4:
            raise SerializationError("network magic must be 4 bytes")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.magic = magic
        self.max_file_size = max_file_size
        self._file_index = 0
        self._bytes_in_file = 0

    def _current_path(self) -> Path:
        return self.directory / f"blk{self._file_index:05d}.dat"

    def write_block(self, block: Block) -> Path:
        """Append one block; returns the file it landed in."""
        raw = serialize_block(block)
        record = self.magic + struct.pack(_LENGTH_FMT, len(raw)) + raw
        if self._bytes_in_file and self._bytes_in_file + len(record) > self.max_file_size:
            self._file_index += 1
            self._bytes_in_file = 0
        path = self._current_path()
        with open(path, "ab") as fh:
            fh.write(record)
        self._bytes_in_file += len(record)
        return path

    def write_chain(self, blocks: Iterable[Block]) -> list[Path]:
        """Append a whole chain; returns the distinct files written."""
        paths: list[Path] = []
        for block in blocks:
            path = self.write_block(block)
            if not paths or paths[-1] != path:
                paths.append(path)
        return paths


def iter_block_files(directory: str | os.PathLike[str]) -> Iterator[Path]:
    """Yield ``blk*.dat`` files in a directory in index order."""
    directory = Path(directory)
    yield from sorted(directory.glob("blk*.dat"))


def read_blocks(
    source: str | os.PathLike[str],
    *,
    magic: bytes = MAINNET_MAGIC,
    start_height: int = 0,
    tolerate_truncation: bool = True,
) -> Iterator[Block]:
    """Stream blocks from a single file or a directory of block files.

    Heights are assigned sequentially from ``start_height``, matching how
    the simulator lays blocks down in order.  A truncated final record is
    silently ignored when ``tolerate_truncation`` is set; any other
    framing error raises :class:`SerializationError`.
    """
    source = Path(source)
    paths = list(iter_block_files(source)) if source.is_dir() else [source]
    height = start_height
    for path in paths:
        data = path.read_bytes()
        reader = ByteReader(data)
        while reader.remaining:
            if reader.remaining < len(magic) + 4:
                if tolerate_truncation:
                    break
                raise TruncatedDataError(f"truncated record header in {path}")
            got_magic = reader.read(4)
            if got_magic != magic:
                raise SerializationError(
                    f"bad network magic {got_magic.hex()} at offset "
                    f"{reader.pos - 4} in {path}"
                )
            (length,) = struct.unpack(_LENGTH_FMT, reader.read(4))
            if reader.remaining < length:
                if tolerate_truncation:
                    break
                raise TruncatedDataError(f"truncated block body in {path}")
            block_reader = ByteReader(reader.read(length))
            block = deserialize_block(block_reader, height=height)
            if block_reader.remaining:
                raise SerializationError(
                    f"{block_reader.remaining} stray bytes inside record in {path}"
                )
            yield block
            height += 1

"""blk*.dat-style block files.

Bitcoin Core appends each block to rolling ``blkNNNNN.dat`` files as
``magic || u32 length || raw block``.  The paper's substrate (a block
parser like znort987/blockparser) consumes exactly these files; we write
and read the same framing so the simulate→serialize→reparse pipeline
exercises a genuine binary parse, including resilience to a truncated
final record (which real block files exhibit after unclean shutdowns).

:class:`BlockFileReader` adds *offset resume*: the durable state store
restores analysis state at a snapshot height ``h`` and then replays only
the tail ``h+1..`` from these files, so the reader can skip the first
``h+1`` records by frame arithmetic alone (read each 8-byte record
header, seek past the body) — no deserialization, no allocation — and
start parsing mid-file at the first tail record.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Iterable, Iterator

from .errors import SerializationError, TruncatedDataError
from .model import Block
from .serialize import ByteReader, deserialize_block, serialize_block

MAINNET_MAGIC = b"\xf9\xbe\xb4\xd9"
"""Bitcoin mainnet network magic, little-endian on the wire."""

DEFAULT_MAX_FILE_SIZE = 128 * 1024 * 1024
_LENGTH_FMT = "<I"


class BlockFileWriter:
    """Append blocks to ``blkNNNNN.dat`` files under a directory.

    Rolls over to a new file once the current one would exceed
    ``max_file_size``, mirroring Bitcoin Core's behaviour.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        magic: bytes = MAINNET_MAGIC,
        max_file_size: int = DEFAULT_MAX_FILE_SIZE,
        resume: bool = False,
    ) -> None:
        if len(magic) != 4:
            raise SerializationError("network magic must be 4 bytes")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.magic = magic
        self.max_file_size = max_file_size
        self._file_index = 0
        self._bytes_in_file = 0
        if resume:
            existing = list(iter_block_files(self.directory))
            if existing:
                last = existing[-1]
                self._file_index = int(last.stem[3:])
                self._bytes_in_file = self._truncate_to_frame_boundary(last)

    def _truncate_to_frame_boundary(self, path: Path) -> int:
        """Drop a trailing partial record before resuming appends.

        An unclean shutdown can leave the last file mid-record; readers
        tolerate that, but *appending after it* would bury the garbage
        inside the frame stream and corrupt every later read.  Scanning
        the frames (header + seek, no parsing) finds the last complete
        record's end; anything beyond it is truncated away.
        """
        size = path.stat().st_size
        end = 0
        with open(path, "rb") as fh:
            while True:
                header = fh.read(len(self.magic) + 4)
                if len(header) < len(self.magic) + 4:
                    break
                if header[:4] != self.magic:
                    raise SerializationError(
                        f"bad network magic {header[:4].hex()} at offset "
                        f"{fh.tell() - len(header)} in {path}; cannot resume"
                    )
                (length,) = struct.unpack(_LENGTH_FMT, header[4:])
                if fh.tell() + length > size:
                    break
                fh.seek(length, os.SEEK_CUR)
                end = fh.tell()
        if end < size:
            with open(path, "rb+") as fh:
                fh.truncate(end)
        return end

    def _current_path(self) -> Path:
        return self.directory / f"blk{self._file_index:05d}.dat"

    def write_block(self, block: Block) -> Path:
        """Append one block; returns the file it landed in."""
        raw = serialize_block(block)
        record = self.magic + struct.pack(_LENGTH_FMT, len(raw)) + raw
        if self._bytes_in_file and self._bytes_in_file + len(record) > self.max_file_size:
            self._file_index += 1
            self._bytes_in_file = 0
        path = self._current_path()
        with open(path, "ab") as fh:
            fh.write(record)
        self._bytes_in_file += len(record)
        return path

    def write_chain(self, blocks: Iterable[Block]) -> list[Path]:
        """Append a whole chain; returns the distinct files written."""
        paths: list[Path] = []
        for block in blocks:
            path = self.write_block(block)
            if not paths or paths[-1] != path:
                paths.append(path)
        return paths


def iter_block_files(directory: str | os.PathLike[str]) -> Iterator[Path]:
    """Yield ``blk*.dat`` files in a directory in index order."""
    directory = Path(directory)
    yield from sorted(directory.glob("blk*.dat"))


class BlockFileReader:
    """Stream blocks from a single file or a directory of block files.

    Heights are assigned sequentially from ``first_height``, matching how
    the simulator lays blocks down in order.  A truncated final record is
    silently ignored when ``tolerate_truncation`` is set; any other
    framing error raises :class:`SerializationError`.

    :meth:`iter_blocks` accepts a ``start_height`` to resume from: the
    records below it are skipped with frame arithmetic (read the 8-byte
    ``magic || length`` header, seek past the body), so resuming at the
    tail of a long chain costs no block parsing for the prefix — the
    mechanism the state store's tail replay is built on.
    """

    def __init__(
        self,
        source: str | os.PathLike[str],
        *,
        magic: bytes = MAINNET_MAGIC,
        first_height: int = 0,
        tolerate_truncation: bool = True,
    ) -> None:
        self.source = Path(source)
        self.magic = magic
        self.first_height = first_height
        self.tolerate_truncation = tolerate_truncation

    def _paths(self) -> list[Path]:
        if self.source.is_dir():
            return list(iter_block_files(self.source))
        return [self.source]

    def _read_record_header(self, fh, path: Path) -> int | None:
        """Read one ``magic || u32 length`` frame header; ``None`` at a
        (tolerated) truncation or end of file."""
        header = fh.read(len(self.magic) + 4)
        if not header:
            return None
        if len(header) < len(self.magic) + 4:
            if self.tolerate_truncation:
                return None
            raise TruncatedDataError(f"truncated record header in {path}")
        if header[:4] != self.magic:
            raise SerializationError(
                f"bad network magic {header[:4].hex()} at offset "
                f"{fh.tell() - len(header)} in {path}"
            )
        (length,) = struct.unpack(_LENGTH_FMT, header[4:])
        return length

    def count_blocks(self) -> int:
        """Number of complete records on disk, by frame arithmetic only."""
        count = 0
        for path in self._paths():
            size = path.stat().st_size
            with open(path, "rb") as fh:
                while True:
                    length = self._read_record_header(fh, path)
                    if length is None:
                        break
                    if fh.tell() + length > size:
                        if self.tolerate_truncation:
                            break
                        raise TruncatedDataError(f"truncated block body in {path}")
                    fh.seek(length, os.SEEK_CUR)
                    count += 1
        return count

    def iter_blocks(self, start_height: int | None = None) -> Iterator[Block]:
        """Yield blocks from ``start_height`` (default: the first record).

        Records below ``start_height`` are skipped without parsing;
        heights are positional, so ``start_height`` must be at least
        ``first_height``.
        """
        height = self.first_height
        if start_height is None:
            start_height = height
        if start_height < height:
            raise ValueError(
                f"start_height {start_height} precedes first record height "
                f"{height}"
            )
        for path in self._paths():
            size = path.stat().st_size
            with open(path, "rb") as fh:
                # Frame-skip whole records while still below start_height.
                while height < start_height:
                    length = self._read_record_header(fh, path)
                    if length is None:
                        break
                    if fh.tell() + length > size:
                        if self.tolerate_truncation:
                            fh.seek(0, os.SEEK_END)
                            break
                        raise TruncatedDataError(f"truncated block body in {path}")
                    fh.seek(length, os.SEEK_CUR)
                    height += 1
                if height < start_height:
                    continue  # every record here was below the resume point
                reader = ByteReader(fh.read())
            offset = size - reader.remaining if size else 0
            while reader.remaining:
                if reader.remaining < len(self.magic) + 4:
                    if self.tolerate_truncation:
                        break
                    raise TruncatedDataError(f"truncated record header in {path}")
                got_magic = reader.read(4)
                if got_magic != self.magic:
                    raise SerializationError(
                        f"bad network magic {got_magic.hex()} at offset "
                        f"{offset + reader.pos - 4} in {path}"
                    )
                (length,) = struct.unpack(_LENGTH_FMT, reader.read(4))
                if reader.remaining < length:
                    if self.tolerate_truncation:
                        break
                    raise TruncatedDataError(f"truncated block body in {path}")
                block_reader = ByteReader(reader.read(length))
                block = deserialize_block(block_reader, height=height)
                if block_reader.remaining:
                    raise SerializationError(
                        f"{block_reader.remaining} stray bytes inside record "
                        f"in {path}"
                    )
                yield block
                height += 1


def read_blocks(
    source: str | os.PathLike[str],
    *,
    magic: bytes = MAINNET_MAGIC,
    start_height: int = 0,
    tolerate_truncation: bool = True,
) -> Iterator[Block]:
    """Stream every block, labeling heights from ``start_height``.

    Thin wrapper over :class:`BlockFileReader` for callers that read a
    whole directory front to back (the reparse pipeline, validation).
    """
    reader = BlockFileReader(
        source,
        magic=magic,
        first_height=start_height,
        tolerate_truncation=tolerate_truncation,
    )
    return reader.iter_blocks()

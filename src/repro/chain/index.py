"""Chain index: the random-access view the analyses run on.

A :class:`ChainIndex` ingests blocks in height order and maintains:

* transaction lookup by txid, with block height and timestamp;
* the UTXO set and a ``spent_by`` map (which input consumed an output);
* per-address histories — every receive and every spend with heights and
  values — which is what Heuristic 2's "has this address appeared
  before?" and "has it received more than one input?" questions read;
* running balances and the set of *sink addresses* (received but never
  spent from), which the paper uses to bound the number of users and to
  define "active bitcoins" in Figure 2.

The index is deliberately append-only: the paper analyses a chain prefix,
and temporal replay (false-positive estimation) is done by *consulting
heights*, not by mutating the index.

Observer fan-out runs on a **shared per-block ingest plan**: after each
``add_block`` the index builds one :class:`~repro.chain.delta.BlockDelta`
(one transaction walk, id-space, see ``chain/delta.py``) and hands that
single object to every subscriber.  :meth:`ChainIndex.subscribe_deltas`
is the native hook; :meth:`ChainIndex.subscribe` remains as a
**compatibility shim** for block-shaped observers (``SnapshotPolicy``,
external consumers) — it adapts the callback to receive
``delta.block``.  Deprecation path: the shim stays until every known
consumer is delta-shaped; new streaming consumers should subscribe to
deltas directly (folding from the delta's flat arrays is both the fast
path and the one the equivalence property suites pin), after which
``subscribe`` will be reduced to a thin alias and eventually warn.

Durability: :meth:`ChainIndex.export_state` flattens the whole index
into plain picklable data (raw block bytes, tuple-keyed maps, per-record
tuples) and :meth:`ChainIndex.restore_state` rebuilds from it *lazily* —
blocks, transactions, and address records stay as flat data until first
touched.  That laziness is what keeps a snapshot restore bounded by
O(flat bytes) instead of O(every Python object the chain ever created):
a restored serving index answers balance/cluster queries and ingests
tail blocks while materializing only the objects those paths actually
touch.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterable, Iterator

from ..obs import NULL_LOGGER, NULL_REGISTRY
from .delta import BlockDelta, build_block_delta
from .errors import (
    DoubleSpendError,
    MissingInputError,
    UnknownAddressError,
    UnknownTransactionError,
)
from .intern import AddressInterner
from .model import Block, OutPoint, Transaction, TxOut


@dataclass(frozen=True, slots=True)
class Receive:
    """One credit to an address: output ``vout`` of ``txid`` at ``height``."""

    height: int
    txid: bytes
    vout: int
    value: int


@dataclass(frozen=True, slots=True)
class Spend:
    """One debit from an address: input ``vin`` of ``txid`` at ``height``."""

    height: int
    txid: bytes
    vin: int
    value: int


@dataclass
class AddressRecord:
    """Everything the index knows about one address."""

    address: str
    address_id: int = -1
    """Dense interned id (see :class:`~repro.chain.intern.AddressInterner`);
    -1 for records built outside a :class:`ChainIndex`."""

    receives: list[Receive] = field(default_factory=list)
    spends: list[Spend] = field(default_factory=list)
    receive_heights: list[int] = field(default_factory=list)
    """Heights of ``receives`` (kept in sync for binary search)."""

    @property
    def first_seen_height(self) -> int:
        """Height of the first appearance (always a receive)."""
        return self.receives[0].height

    @property
    def total_received(self) -> int:
        return sum(r.value for r in self.receives)

    @property
    def total_spent(self) -> int:
        return sum(s.value for s in self.spends)

    @property
    def balance(self) -> int:
        return self.total_received - self.total_spent

    @property
    def is_sink(self) -> bool:
        """True when the address has never spent anything."""
        return not self.spends

    def receives_at_or_before(self, height: int) -> list[Receive]:
        """Receives with ``height <= height`` (ordered)."""
        return self.receives[: bisect_right(self.receive_heights, height)]

    def receives_after(self, height: int) -> list[Receive]:
        """Receives strictly after ``height`` (ordered)."""
        return self.receives[bisect_right(self.receive_heights, height):]

    def receives_before(self, height: int) -> int:
        """Count of receives strictly before ``height``."""
        return bisect_left(self.receive_heights, height)


@dataclass(frozen=True, slots=True)
class TxLocation:
    """Where a transaction sits in the chain."""

    height: int
    timestamp: int
    index_in_block: int


class ChainIndex:
    """Indexed view over an ordered sequence of blocks."""

    def __init__(self) -> None:
        self._txs: dict[bytes, Transaction] = {}
        self._locations: dict[bytes, TxLocation] = {}
        # UTXO/spender maps are keyed by plain (txid, vout) tuples, not
        # OutPoint objects: the keys then restore from a snapshot at
        # pickle speed with zero per-entry reconstruction.
        self._utxos: dict[tuple[bytes, int], TxOut] = {}
        self._spent_by: dict[tuple[bytes, int], tuple[bytes, int]] = {}
        self._addresses: dict[str, AddressRecord] = {}
        self._records_by_id: list[AddressRecord] = []
        self._interner = AddressInterner()
        self._blocks: list[Block] = []
        # Addresses appearing in a tx's outputs whose prevouts include the
        # same address ("self-change" usage, §4.2).
        self._self_change_history: dict[str, list[int]] = {}
        # Per-tx input address ids (dedup'd, insertion-ordered), memoized:
        # the heuristics resolve the same transaction's senders many times.
        self._input_ids: dict[bytes, tuple[int, ...]] = {}
        # Per-tx output address ids (position-aligned, -1 for exotic
        # scripts), memoized: every streaming view credits the same
        # outputs, and script → address extraction is the hot part.
        self._output_ids: dict[bytes, tuple[int, ...]] = {}
        # Per-tx (address id, value) of each consumed output, aligned
        # with the non-coinbase inputs.  Populated during ingestion —
        # `_add_tx` holds every spent TxOut the moment it pops the UTXO
        # — so observers debiting spends never re-resolve prevouts
        # (which, on a snapshot-restored index, would materialize
        # historic blocks and defeat the lazy restore).
        self._input_spends: dict[bytes, tuple[tuple[int, int], ...]] = {}
        self._observers: list[tuple[Callable[[BlockDelta], None], str]] = []
        """``(observer, name)`` pairs in registration order.  Names key
        the per-subscriber fan-out metrics; block-shaped callbacks
        registered through the :meth:`subscribe` shim sit here wrapped
        in an adapter."""
        self.metrics = NULL_REGISTRY
        """Telemetry sink (:class:`~repro.obs.metrics.MetricsRegistry`).
        Defaults to the shared disabled registry — assign an enabled one
        to record per-stage ingest timings (``ingest.*``) and per-block
        flight spans; see ``docs/metrics.md``."""
        self.log = NULL_LOGGER
        """Structured event sink (:class:`~repro.obs.log.EventLogger`).
        Defaults to the shared null logger — assign a
        :class:`~repro.obs.log.JsonLinesLogger` to record ingest and
        subscriber-failure events; see ``docs/observability.md``."""
        self._timestamps: list[int] = []
        # Lazy backing for a snapshot-restored index; all None/absent in a
        # live-built one.  `_blocks` / `_records_by_id` hold None at not-
        # yet-materialized positions, with the flat data waiting here.
        self._raw_blocks: list[bytes | None] | None = None
        self._tx_locator: dict[bytes, tuple[int, int]] | None = None
        """txid -> (height, index in block) for every tx, materialized
        or not (kept current through tail ingestion)."""
        self._lazy_records: list[tuple | None] | None = None
        """Per address id: ``(receive_tuples, spend_tuples)`` until the
        :class:`AddressRecord` is first touched."""
        self._txids_by_height: dict[int, dict[int, bytes]] | None = None
        """Inverse of ``_tx_locator`` (height -> position -> txid),
        built once on the first lazy block materialization so txids are
        seated, not recomputed."""

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def add_block(self, block: Block) -> None:
        """Ingest the next block.  Blocks must arrive in height order."""
        expected = len(self._blocks)
        if block.height != expected:
            raise MissingInputError(
                f"blocks must be added in order: expected height {expected}, "
                f"got {block.height}"
            )
        metrics = self.metrics
        timed = metrics.enabled
        if timed:
            start = perf_counter()
        for i, tx in enumerate(block.transactions):
            self._add_tx(tx, block, i)
        self._blocks.append(block)
        self._timestamps.append(block.header.timestamp)
        if timed:
            now = perf_counter()
            metrics.histogram("ingest.index_seconds").observe(now - start)
        if self._raw_blocks is not None:
            self._raw_blocks.append(None)  # serialized on demand at export
        if self._observers:
            if timed:
                start = perf_counter()
            delta = build_block_delta(self, block)
            if timed:
                now = perf_counter()
                metrics.histogram("ingest.delta_build_seconds").observe(
                    now - start
                )
            self._notify_observers(delta)
            if timed:
                metrics.flight.record(
                    "block",
                    height=block.height,
                    txs=len(block.transactions),
                    seconds=perf_counter() - start,
                )
        if self.log.enabled:
            self.log.debug(
                "block_ingested",
                height=block.height,
                txs=len(block.transactions),
            )

    def block_delta(self, height: int) -> BlockDelta:
        """The shared ingest plan for one already-ingested block.

        Streaming fan-out builds each block's delta exactly once inside
        :meth:`add_block`; this rebuilds the identical plan on demand —
        the catch-up path consumers use to fold blocks the index held
        before they attached.
        """
        return build_block_delta(self, self.block_at(height))

    def _notify_observers(self, delta: BlockDelta) -> None:
        """Fan one block's shared :class:`BlockDelta` out to every
        observer registered when ingestion finished, in registration
        order — the *same* object to each, so the whole pipeline costs
        one transaction walk per block.

        The observer list is snapshotted first, so a callback that
        subscribes or unsubscribes mid-fan-out cannot skip or double-
        deliver this block (late subscribers start at the *next* block).
        A raising observer does not starve the ones after it: every
        observer is notified before the first exception propagates to the
        ``add_block`` caller — and *every* failure (not just the first)
        is counted per subscriber and retained in the flight recorder,
        so a flaky later subscriber stays visible even though only the
        first exception is raised (the rest ride along as notes).
        """
        errors: list[BaseException] = []
        metrics = self.metrics
        timed = metrics.enabled
        for observer, name in tuple(self._observers):
            if timed:
                start = perf_counter()
            try:
                observer(delta)
            except Exception as exc:  # noqa: BLE001 — isolate per observer
                errors.append(exc)
                if timed:
                    metrics.counter(
                        "ingest.subscriber_errors", subscriber=name
                    ).inc()
                    metrics.flight.record(
                        "subscriber_error",
                        height=delta.height,
                        subscriber=name,
                        error=repr(exc),
                    )
                if self.log.enabled:
                    self.log.error(
                        "subscriber_error",
                        height=delta.height,
                        subscriber=name,
                        error=repr(exc),
                    )
            if timed:
                metrics.histogram(
                    "ingest.fanout_seconds", subscriber=name
                ).observe(perf_counter() - start)
        if errors:
            first = errors[0]
            for later in errors[1:]:
                first.add_note(
                    f"additional observer failure at height {delta.height}: "
                    f"{later!r}"
                )
            raise first

    def subscribe_deltas(
        self,
        observer: Callable[[BlockDelta], None],
        *,
        name: str | None = None,
    ) -> Callable[[], None]:
        """Register a per-block delta observer; returns an unsubscribe
        callable.

        Observers are called after each block is fully ingested (index
        queries see the block), in registration order, each exactly once
        per block, every one receiving the block's single shared
        :class:`~repro.chain.delta.BlockDelta`.  This is the hook the
        incremental clustering engine and the service layer's
        materialized views stream from; see :meth:`_notify_observers`
        for the fan-out contract under mid-callback (un)subscription and
        observer exceptions.

        ``name`` labels the subscriber in the per-subscriber fan-out
        metrics and error spans (``ingest.fanout_seconds{subscriber=…}``);
        it defaults to the callable's qualified name.
        """
        if name is None:
            name = getattr(observer, "__qualname__", None) or repr(observer)
        entry = (observer, name)
        self._observers.append(entry)

        def unsubscribe() -> None:
            if entry in self._observers:
                self._observers.remove(entry)

        return unsubscribe

    def subscribe(
        self,
        observer: Callable[[Block], None],
        *,
        name: str | None = None,
    ) -> Callable[[], None]:
        """Compatibility shim: register a *block*-shaped observer.

        Equivalent to :meth:`subscribe_deltas` with the callback adapted
        to receive ``delta.block`` — same registration-order slot, same
        exactly-once and exception-isolation guarantees.  Kept for
        consumers that only need block-level facts
        (:class:`~repro.storage.store.SnapshotPolicy`, external code);
        new streaming consumers should take the delta (see the module
        docstring for the shim's deprecation path).
        """
        if name is None:
            name = getattr(observer, "__qualname__", None) or repr(observer)

        def adapter(delta: BlockDelta) -> None:
            observer(delta.block)

        return self.subscribe_deltas(adapter, name=name)

    def add_chain(self, blocks: Iterable[Block]) -> None:
        """Ingest a whole chain in order."""
        for block in blocks:
            self.add_block(block)

    def _add_tx(self, tx: Transaction, block: Block, index_in_block: int) -> None:
        txid = tx.txid
        if txid in self:
            raise DoubleSpendError(f"duplicate transaction {tx.txid_hex}")
        input_addrs: set[str] = set()
        input_ids: dict[int, None] = {}  # dedup'd, insertion-ordered
        input_spends: list[tuple[int, int]] = []
        # Consume inputs.
        for vin, txin in enumerate(tx.inputs):
            if txin.is_coinbase:
                continue
            prevout = txin.prevout
            prevout_key = (prevout.txid, prevout.vout)
            if prevout_key in self._spent_by:
                raise DoubleSpendError(
                    f"{tx.txid_hex} double-spends {prevout.txid[::-1].hex()}:"
                    f"{prevout.vout}"
                )
            spent = self._utxos.pop(prevout_key, None)
            if spent is None:
                raise MissingInputError(
                    f"{tx.txid_hex} spends unknown outpoint "
                    f"{prevout.txid[::-1].hex()}:{prevout.vout}"
                )
            self._spent_by[prevout_key] = (txid, vin)
            addr = spent.address
            if addr is None:
                input_spends.append((-1, spent.value))
            else:
                input_addrs.add(addr)
                record = self.address(addr)
                record.spends.append(Spend(block.height, txid, vin, spent.value))
                input_ids.setdefault(record.address_id)
                input_spends.append((record.address_id, spent.value))
        # Create outputs.
        output_ids: list[int] = []
        for vout, txout in enumerate(tx.outputs):
            self._utxos[(txid, vout)] = txout
            addr = txout.address
            if addr is None:
                output_ids.append(-1)
                continue
            record = self._record_or_none(addr)
            if record is None:
                record = AddressRecord(addr, self._interner.intern(addr))
                self._addresses[addr] = record
                self._records_by_id.append(record)
                if self._lazy_records is not None:
                    self._lazy_records.append(None)
            output_ids.append(record.address_id)
            record.receives.append(Receive(block.height, txid, vout, txout.value))
            record.receive_heights.append(block.height)
            if addr in input_addrs:
                self._self_change_history.setdefault(addr, []).append(block.height)
        # Seat the per-tx memos while the resolved data is in hand: the
        # streaming observers (H1 unions, balance debits, activity) read
        # exactly these, so they never re-resolve scripts or prevouts.
        self._input_ids[txid] = tuple(input_ids)
        self._output_ids[txid] = tuple(output_ids)
        self._input_spends[txid] = tuple(input_spends)
        self._txs[txid] = tx
        if self._tx_locator is not None:
            self._tx_locator[txid] = (block.height, index_in_block)
        self._locations[txid] = TxLocation(
            height=block.height,
            timestamp=block.header.timestamp,
            index_in_block=index_in_block,
        )

    # ------------------------------------------------------------------
    # chain / block access
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Height of the chain tip (-1 when empty)."""
        return len(self._blocks) - 1

    @property
    def blocks(self) -> list[Block]:
        """The ingested blocks in height order (fully materialized)."""
        if self._raw_blocks is not None:
            for height, block in enumerate(self._blocks):
                if block is None:
                    self._materialize_block(height)
        return self._blocks

    def block_at(self, height: int) -> Block:
        """The block at ``height``."""
        block = self._blocks[height]
        if block is None:
            block = self._materialize_block(height)
        return block

    def _materialize_block(self, height: int) -> Block:
        """Parse a restored block from its raw bytes on first touch and
        register its transactions in the live maps.

        Txids are seated from the locator instead of recomputed — the
        double-SHA256 over a re-serialization is the expensive half of
        materializing a block, and the locator already knows every id.
        """
        from .serialize import block_from_bytes

        raw = self._raw_blocks[height]
        block = block_from_bytes(raw, height=height)
        self._blocks[height] = block
        if self._txids_by_height is None:
            by_height: dict[int, dict[int, bytes]] = {}
            for txid, (tx_height, position) in self._tx_locator.items():
                by_height.setdefault(tx_height, {})[position] = txid
            self._txids_by_height = by_height
        seated = self._txids_by_height.get(height, {})
        txs = self._txs
        for position, tx in enumerate(block.transactions):
            txid = seated.get(position)
            if txid is not None:
                tx.__dict__["txid"] = txid  # pre-warm the cached_property
            txs[tx.txid] = tx
        return block

    def timestamp_at(self, height: int) -> int:
        """The block timestamp at ``height``."""
        return self._timestamps[height]

    # ------------------------------------------------------------------
    # transaction access
    # ------------------------------------------------------------------

    def __contains__(self, txid: bytes) -> bool:
        if txid in self._txs:
            return True
        return self._tx_locator is not None and txid in self._tx_locator

    def tx(self, txid: bytes) -> Transaction:
        """Look up a transaction by internal-order txid."""
        found = self._txs.get(txid)
        if found is not None:
            return found
        if self._tx_locator is not None:
            location = self._tx_locator.get(txid)
            if location is not None:
                block = self.block_at(location[0])
                return block.transactions[location[1]]
        raise UnknownTransactionError(txid[::-1].hex())

    def location(self, txid: bytes) -> TxLocation:
        """Block height/timestamp/position for a txid."""
        found = self._locations.get(txid)
        if found is not None:
            return found
        if self._tx_locator is not None:
            located = self._tx_locator.get(txid)
            if located is not None:
                height, index_in_block = located
                found = TxLocation(height, self._timestamps[height], index_in_block)
                self._locations[txid] = found
                return found
        raise UnknownTransactionError(txid[::-1].hex())

    def iter_transactions(self) -> Iterator[tuple[Transaction, TxLocation]]:
        """All transactions with their locations, in chain order."""
        for height in range(len(self._blocks)):
            block = self.block_at(height)
            for i, tx in enumerate(block.transactions):
                yield tx, TxLocation(block.height, block.header.timestamp, i)

    @property
    def tx_count(self) -> int:
        if self._tx_locator is not None:
            return len(self._tx_locator)
        return len(self._txs)

    # ------------------------------------------------------------------
    # outputs / UTXO
    # ------------------------------------------------------------------

    def output(self, outpoint: OutPoint) -> TxOut:
        """The output a prevout references (spent or unspent)."""
        utxo = self._utxos.get((outpoint.txid, outpoint.vout))
        if utxo is not None:
            return utxo
        tx = self.tx(outpoint.txid)
        return tx.outputs[outpoint.vout]

    def is_unspent(self, outpoint: OutPoint) -> bool:
        """True while an output is in the UTXO set."""
        return (outpoint.txid, outpoint.vout) in self._utxos

    def spender_of(self, outpoint: OutPoint) -> tuple[bytes, int] | None:
        """``(txid, vin)`` of the input spending an output, if spent."""
        return self._spent_by.get((outpoint.txid, outpoint.vout))

    @property
    def utxo_count(self) -> int:
        return len(self._utxos)

    def utxo_value(self) -> int:
        """Total satoshis in the UTXO set."""
        return sum(out.value for out in self._utxos.values())

    # ------------------------------------------------------------------
    # addresses
    # ------------------------------------------------------------------

    @property
    def interner(self) -> AddressInterner:
        """The index's address interner (string ⇄ dense id)."""
        return self._interner

    def has_address(self, address: str) -> bool:
        if address in self._addresses:
            return True
        return (
            self._lazy_records is not None
            and self._interner.id_of(address) is not None
        )

    def _record_or_none(self, address: str) -> AddressRecord | None:
        """The record for ``address`` if it exists (materializing a lazy
        one), else ``None``."""
        record = self._addresses.get(address)
        if record is None and self._lazy_records is not None:
            ident = self._interner.id_of(address)
            if ident is not None:
                record = self._materialize_record(ident)
        return record

    def _materialize_record(self, address_id: int) -> AddressRecord:
        """Inflate a restored address record from its flat tuples."""
        record = self._records_by_id[address_id]
        if record is not None:
            return record
        receives, spends = self._lazy_records[address_id]
        record = AddressRecord(
            self._interner.address_of(address_id), address_id
        )
        record.receives = [Receive(*entry) for entry in receives]
        record.spends = [Spend(*entry) for entry in spends]
        record.receive_heights = [entry[0] for entry in receives]
        self._records_by_id[address_id] = record
        self._addresses[record.address] = record
        self._lazy_records[address_id] = None
        return record

    def address(self, address: str) -> AddressRecord:
        """The :class:`AddressRecord` for ``address``."""
        record = self._record_or_none(address)
        if record is None:
            raise UnknownAddressError(address)
        return record

    def address_by_id(self, address_id: int) -> AddressRecord:
        """The :class:`AddressRecord` for an interned address id."""
        try:
            record = self._records_by_id[address_id]
        except IndexError:
            raise UnknownAddressError(f"id:{address_id}") from None
        if record is None:
            record = self._materialize_record(address_id)
        return record

    def iter_addresses(self) -> Iterator[AddressRecord]:
        """Every record, in interned-id (= first-sight) order."""
        for address_id in range(len(self._records_by_id)):
            yield self.address_by_id(address_id)

    @property
    def address_count(self) -> int:
        return len(self._records_by_id)

    def sink_addresses(self) -> list[str]:
        """Addresses that have received but never spent (paper §4.1)."""
        return [rec.address for rec in self.iter_addresses() if rec.is_sink]

    def input_address_ids(self, tx: Transaction) -> tuple[int, ...]:
        """Interned ids of the addresses a transaction spends from
        (deduplicated, insertion-ordered).  Empty for coinbases.

        Memoized per txid for transactions in the index: the clustering
        heuristics resolve the same senders repeatedly (H1 unions, H2
        candidate checks, dice lookups, FP replay).
        """
        txid = tx.txid
        cached = self._input_ids.get(txid)
        if cached is not None:
            return cached
        seen: dict[int, None] = {}
        for txin in tx.inputs:
            if txin.is_coinbase:
                continue
            addr = self.output(txin.prevout).address
            if addr is not None:
                seen.setdefault(self._interner.intern(addr))
        ids = tuple(seen)
        if txid in self:
            self._input_ids[txid] = ids
        return ids

    def output_address_ids(self, tx: Transaction) -> tuple[int, ...]:
        """Interned ids of a transaction's output addresses, aligned with
        ``tx.outputs`` (-1 for outputs with no extractable address).

        Memoized per txid for transactions in the index: the service
        layer's materialized views (balances, activity) each credit the
        same outputs per block, and script → address extraction is the
        expensive part of that loop.

        For a transaction *not* in the index, addresses are resolved
        without allocating (-1 also covers never-interned addresses):
        interning here would inject phantom ids into the dense
        first-sight id space the per-height snapshot universes rely on.
        """
        txid = tx.txid
        cached = self._output_ids.get(txid)
        if cached is not None:
            return cached
        if txid in self:
            # Ingestion already interned every output address; intern()
            # is a pure lookup here.
            intern = self._interner.intern
            ids = tuple(
                -1 if out.address is None else intern(out.address)
                for out in tx.outputs
            )
            self._output_ids[txid] = ids
            return ids
        id_of = self._interner.id_of
        ids = []
        for out in tx.outputs:
            address = out.address
            ident = id_of(address) if address is not None else None
            ids.append(-1 if ident is None else ident)
        return tuple(ids)

    def input_addresses(self, tx: Transaction) -> list[str]:
        """Addresses owning the outputs a transaction spends (deduplicated,
        insertion-ordered).  Empty for coinbases.  This is the reporting
        edge of :meth:`input_address_ids`."""
        return self._interner.addresses_of(self.input_address_ids(tx))

    def input_spends(self, tx: Transaction) -> tuple[tuple[int, int], ...]:
        """``(address id, value)`` of each consumed output, aligned with
        the transaction's non-coinbase inputs (-1 for exotic scripts).

        Memoized at ingestion (``_add_tx`` holds every spent output as
        it pops the UTXO), so for indexed transactions this never
        resolves a prevout — the property the balance view's spend
        debits and a lazily restored index both rely on.
        """
        txid = tx.txid
        cached = self._input_spends.get(txid)
        if cached is not None:
            return cached
        spends: list[tuple[int, int]] = []
        id_of = self._interner.id_of
        for txin in tx.inputs:
            if txin.is_coinbase:
                continue
            out = self.output(txin.prevout)
            ident = id_of(out.address) if out.address is not None else None
            spends.append((-1 if ident is None else ident, out.value))
        resolved = tuple(spends)
        if txid in self:
            self._input_spends[txid] = resolved
        return resolved

    def input_value(self, tx: Transaction) -> int:
        """Total satoshis consumed by a transaction's inputs."""
        if tx.is_coinbase:
            return 0
        return sum(value for _ident, value in self.input_spends(tx))

    def fee(self, tx: Transaction) -> int:
        """Miner fee (inputs minus outputs); 0 for coinbases."""
        if tx.is_coinbase:
            return 0
        return self.input_value(tx) - tx.total_output_value

    # ------------------------------------------------------------------
    # temporal queries used by Heuristic 2 (§4.1/§4.2)
    # ------------------------------------------------------------------

    def appearances_before(self, address: str, height: int) -> int:
        """How many times ``address`` was paid strictly before ``height``."""
        record = self._record_or_none(address)
        if record is None:
            return 0
        return record.receives_before(height)

    def first_seen(self, address: str) -> int | None:
        """Height of the first receive, or ``None`` if never seen."""
        record = self._record_or_none(address)
        if record is None or not record.receives:
            return None
        return record.first_seen_height

    def self_change_heights(self, address: str) -> list[int]:
        """Heights at which ``address`` was used as a self-change address
        (appears among both the inputs and the outputs of one tx)."""
        return self._self_change_history.get(address, [])

    def was_self_change_before(self, address: str, height: int) -> bool:
        """True if the address served as self-change strictly before
        ``height`` (one of the §4.2 refinements)."""
        return any(h < height for h in self._self_change_history.get(address, ()))

    # ------------------------------------------------------------------
    # durable state (snapshot / restore)
    # ------------------------------------------------------------------

    STATE_VERSION = 1
    """Bump on any incompatible change to the exported state shape."""

    def export_state(self) -> dict:
        """Flatten the index into plain picklable data.

        Everything is primitives, tuples, lists, and dicts — no model
        objects — so serialization and deserialization both run at
        C speed, and :meth:`restore_state` can rebuild lazily.  Blocks
        are exported as their wire bytes (reusing the raw bytes a
        restored index was itself loaded from, where still unparsed).
        """
        from .serialize import serialize_block

        raw_blocks: list[bytes] = []
        for height, block in enumerate(self._blocks):
            raw = self._raw_blocks[height] if self._raw_blocks is not None else None
            if raw is None:
                raw = serialize_block(self.block_at(height))
            raw_blocks.append(raw)
        if self._tx_locator is not None:
            tx_locator = dict(self._tx_locator)
        else:
            tx_locator = {}
            for height, block in enumerate(self._blocks):
                for i, tx in enumerate(block.transactions):
                    tx_locator[tx.txid] = (height, i)
        records: list[tuple] = []
        for address_id in range(len(self._records_by_id)):
            record = self._records_by_id[address_id]
            if record is None:
                records.append(self._lazy_records[address_id])
                continue
            records.append(
                (
                    [(r.height, r.txid, r.vout, r.value) for r in record.receives],
                    [(s.height, s.txid, s.vin, s.value) for s in record.spends],
                )
            )
        return {
            "version": self.STATE_VERSION,
            "raw_blocks": raw_blocks,
            "timestamps": list(self._timestamps),
            "tx_locator": tx_locator,
            "utxos": {
                key: (out.value, out.script_pubkey)
                for key, out in self._utxos.items()
            },
            "spent_by": dict(self._spent_by),
            "addresses": list(self._interner),
            "records": records,
            "self_change": {
                address: list(heights)
                for address, heights in self._self_change_history.items()
            },
        }

    @classmethod
    def restore_state(cls, state: dict) -> "ChainIndex":
        """Rebuild an index from :meth:`export_state` output, lazily.

        Blocks, transactions, and address records are left as flat data
        and materialized on first access; the UTXO set, spender map, and
        interner are rebuilt eagerly (tail ingestion needs them all
        immediately).  The restored index is fully live: it ingests new
        blocks, fans out to observers, and can itself be exported again.
        """
        version = state.get("version")
        if version != cls.STATE_VERSION:
            raise ValueError(
                f"unsupported chain state version {version!r} "
                f"(expected {cls.STATE_VERSION})"
            )
        index = cls()
        raw_blocks = list(state["raw_blocks"])
        index._raw_blocks = raw_blocks
        index._blocks = [None] * len(raw_blocks)
        index._timestamps = list(state["timestamps"])
        index._tx_locator = dict(state["tx_locator"])
        index._utxos = {
            key: TxOut(value, script)
            for key, (value, script) in state["utxos"].items()
        }
        index._spent_by = dict(state["spent_by"])
        index._interner = AddressInterner.from_addresses(state["addresses"])
        lazy_records = list(state["records"])
        index._lazy_records = lazy_records
        index._records_by_id = [None] * len(lazy_records)
        index._self_change_history = {
            address: list(heights)
            for address, heights in state["self_change"].items()
        }
        if len(index._timestamps) != len(raw_blocks):
            raise ValueError("chain state timestamps misaligned with blocks")
        if len(index._interner) != len(lazy_records):
            raise ValueError("chain state records misaligned with interner")
        return index

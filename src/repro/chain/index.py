"""Chain index: the random-access view the analyses run on.

A :class:`ChainIndex` ingests blocks in height order and maintains:

* transaction lookup by txid, with block height and timestamp;
* the UTXO set and a ``spent_by`` map (which input consumed an output);
* per-address histories — every receive and every spend with heights and
  values — which is what Heuristic 2's "has this address appeared
  before?" and "has it received more than one input?" questions read;
* running balances and the set of *sink addresses* (received but never
  spent from), which the paper uses to bound the number of users and to
  define "active bitcoins" in Figure 2.

The index is deliberately append-only: the paper analyses a chain prefix,
and temporal replay (false-positive estimation) is done by *consulting
heights*, not by mutating the index.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from .errors import (
    DoubleSpendError,
    MissingInputError,
    UnknownAddressError,
    UnknownTransactionError,
)
from .intern import AddressInterner
from .model import Block, OutPoint, Transaction, TxOut


@dataclass(frozen=True, slots=True)
class Receive:
    """One credit to an address: output ``vout`` of ``txid`` at ``height``."""

    height: int
    txid: bytes
    vout: int
    value: int


@dataclass(frozen=True, slots=True)
class Spend:
    """One debit from an address: input ``vin`` of ``txid`` at ``height``."""

    height: int
    txid: bytes
    vin: int
    value: int


@dataclass
class AddressRecord:
    """Everything the index knows about one address."""

    address: str
    address_id: int = -1
    """Dense interned id (see :class:`~repro.chain.intern.AddressInterner`);
    -1 for records built outside a :class:`ChainIndex`."""

    receives: list[Receive] = field(default_factory=list)
    spends: list[Spend] = field(default_factory=list)
    receive_heights: list[int] = field(default_factory=list)
    """Heights of ``receives`` (kept in sync for binary search)."""

    @property
    def first_seen_height(self) -> int:
        """Height of the first appearance (always a receive)."""
        return self.receives[0].height

    @property
    def total_received(self) -> int:
        return sum(r.value for r in self.receives)

    @property
    def total_spent(self) -> int:
        return sum(s.value for s in self.spends)

    @property
    def balance(self) -> int:
        return self.total_received - self.total_spent

    @property
    def is_sink(self) -> bool:
        """True when the address has never spent anything."""
        return not self.spends

    def receives_at_or_before(self, height: int) -> list[Receive]:
        """Receives with ``height <= height`` (ordered)."""
        return self.receives[: bisect_right(self.receive_heights, height)]

    def receives_after(self, height: int) -> list[Receive]:
        """Receives strictly after ``height`` (ordered)."""
        return self.receives[bisect_right(self.receive_heights, height):]

    def receives_before(self, height: int) -> int:
        """Count of receives strictly before ``height``."""
        return bisect_left(self.receive_heights, height)


@dataclass(frozen=True, slots=True)
class TxLocation:
    """Where a transaction sits in the chain."""

    height: int
    timestamp: int
    index_in_block: int


class ChainIndex:
    """Indexed view over an ordered sequence of blocks."""

    def __init__(self) -> None:
        self._txs: dict[bytes, Transaction] = {}
        self._locations: dict[bytes, TxLocation] = {}
        self._utxos: dict[OutPoint, TxOut] = {}
        self._spent_by: dict[OutPoint, tuple[bytes, int]] = {}
        self._addresses: dict[str, AddressRecord] = {}
        self._records_by_id: list[AddressRecord] = []
        self._interner = AddressInterner()
        self._blocks: list[Block] = []
        # Addresses appearing in a tx's outputs whose prevouts include the
        # same address ("self-change" usage, §4.2).
        self._self_change_history: dict[str, list[int]] = {}
        # Per-tx input address ids (dedup'd, insertion-ordered), memoized:
        # the heuristics resolve the same transaction's senders many times.
        self._input_ids: dict[bytes, tuple[int, ...]] = {}
        # Per-tx output address ids (position-aligned, -1 for exotic
        # scripts), memoized: every streaming view credits the same
        # outputs, and script → address extraction is the hot part.
        self._output_ids: dict[bytes, tuple[int, ...]] = {}
        self._observers: list[Callable[[Block], None]] = []

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def add_block(self, block: Block) -> None:
        """Ingest the next block.  Blocks must arrive in height order."""
        expected = len(self._blocks)
        if block.height != expected:
            raise MissingInputError(
                f"blocks must be added in order: expected height {expected}, "
                f"got {block.height}"
            )
        for i, tx in enumerate(block.transactions):
            self._add_tx(tx, block, i)
        self._blocks.append(block)
        self._notify_observers(block)

    def _notify_observers(self, block: Block) -> None:
        """Fan the block out to every observer registered when ingestion
        finished, in registration order.

        The observer list is snapshotted first, so a callback that
        subscribes or unsubscribes mid-fan-out cannot skip or double-
        deliver this block (late subscribers start at the *next* block).
        A raising observer does not starve the ones after it: every
        observer is notified before the first exception propagates to the
        ``add_block`` caller.
        """
        errors: list[BaseException] = []
        for observer in tuple(self._observers):
            try:
                observer(block)
            except Exception as exc:  # noqa: BLE001 — isolate per observer
                errors.append(exc)
        if errors:
            first = errors[0]
            for later in errors[1:]:
                first.add_note(
                    f"additional observer failure at height {block.height}: "
                    f"{later!r}"
                )
            raise first

    def subscribe(self, observer: Callable[[Block], None]) -> Callable[[], None]:
        """Register a per-block observer; returns an unsubscribe callable.

        Observers are called after each block is fully ingested (index
        queries see the block), in registration order, each exactly once
        per block.  This is the hook the incremental clustering engine
        and the service layer's materialized views stream from; see
        :meth:`_notify_observers` for the fan-out contract under
        mid-callback (un)subscription and observer exceptions.
        """
        self._observers.append(observer)

        def unsubscribe() -> None:
            if observer in self._observers:
                self._observers.remove(observer)

        return unsubscribe

    def add_chain(self, blocks: Iterable[Block]) -> None:
        """Ingest a whole chain in order."""
        for block in blocks:
            self.add_block(block)

    def _add_tx(self, tx: Transaction, block: Block, index_in_block: int) -> None:
        txid = tx.txid
        if txid in self._txs:
            raise DoubleSpendError(f"duplicate transaction {tx.txid_hex}")
        input_addrs: set[str] = set()
        # Consume inputs.
        for vin, txin in enumerate(tx.inputs):
            if txin.is_coinbase:
                continue
            prevout = txin.prevout
            if prevout in self._spent_by:
                raise DoubleSpendError(
                    f"{tx.txid_hex} double-spends {prevout.txid[::-1].hex()}:"
                    f"{prevout.vout}"
                )
            spent = self._utxos.pop(prevout, None)
            if spent is None:
                raise MissingInputError(
                    f"{tx.txid_hex} spends unknown outpoint "
                    f"{prevout.txid[::-1].hex()}:{prevout.vout}"
                )
            self._spent_by[prevout] = (txid, vin)
            addr = spent.address
            if addr is not None:
                input_addrs.add(addr)
                self._addresses[addr].spends.append(
                    Spend(block.height, txid, vin, spent.value)
                )
        # Create outputs.
        for vout, txout in enumerate(tx.outputs):
            self._utxos[OutPoint(txid, vout)] = txout
            addr = txout.address
            if addr is None:
                continue
            record = self._addresses.get(addr)
            if record is None:
                record = AddressRecord(addr, self._interner.intern(addr))
                self._addresses[addr] = record
                self._records_by_id.append(record)
            record.receives.append(Receive(block.height, txid, vout, txout.value))
            record.receive_heights.append(block.height)
            if addr in input_addrs:
                self._self_change_history.setdefault(addr, []).append(block.height)
        self._txs[txid] = tx
        self._locations[txid] = TxLocation(
            height=block.height,
            timestamp=block.header.timestamp,
            index_in_block=index_in_block,
        )

    # ------------------------------------------------------------------
    # chain / block access
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Height of the chain tip (-1 when empty)."""
        return len(self._blocks) - 1

    @property
    def blocks(self) -> list[Block]:
        """The ingested blocks in height order."""
        return self._blocks

    def block_at(self, height: int) -> Block:
        """The block at ``height``."""
        return self._blocks[height]

    def timestamp_at(self, height: int) -> int:
        """The block timestamp at ``height``."""
        return self._blocks[height].header.timestamp

    # ------------------------------------------------------------------
    # transaction access
    # ------------------------------------------------------------------

    def __contains__(self, txid: bytes) -> bool:
        return txid in self._txs

    def tx(self, txid: bytes) -> Transaction:
        """Look up a transaction by internal-order txid."""
        try:
            return self._txs[txid]
        except KeyError:
            raise UnknownTransactionError(txid[::-1].hex()) from None

    def location(self, txid: bytes) -> TxLocation:
        """Block height/timestamp/position for a txid."""
        try:
            return self._locations[txid]
        except KeyError:
            raise UnknownTransactionError(txid[::-1].hex()) from None

    def iter_transactions(self) -> Iterator[tuple[Transaction, TxLocation]]:
        """All transactions with their locations, in chain order."""
        for block in self._blocks:
            for i, tx in enumerate(block.transactions):
                yield tx, TxLocation(block.height, block.header.timestamp, i)

    @property
    def tx_count(self) -> int:
        return len(self._txs)

    # ------------------------------------------------------------------
    # outputs / UTXO
    # ------------------------------------------------------------------

    def output(self, outpoint: OutPoint) -> TxOut:
        """The output a prevout references (spent or unspent)."""
        utxo = self._utxos.get(outpoint)
        if utxo is not None:
            return utxo
        tx = self.tx(outpoint.txid)
        return tx.outputs[outpoint.vout]

    def is_unspent(self, outpoint: OutPoint) -> bool:
        """True while an output is in the UTXO set."""
        return outpoint in self._utxos

    def spender_of(self, outpoint: OutPoint) -> tuple[bytes, int] | None:
        """``(txid, vin)`` of the input spending an output, if spent."""
        return self._spent_by.get(outpoint)

    @property
    def utxo_count(self) -> int:
        return len(self._utxos)

    def utxo_value(self) -> int:
        """Total satoshis in the UTXO set."""
        return sum(out.value for out in self._utxos.values())

    # ------------------------------------------------------------------
    # addresses
    # ------------------------------------------------------------------

    @property
    def interner(self) -> AddressInterner:
        """The index's address interner (string ⇄ dense id)."""
        return self._interner

    def has_address(self, address: str) -> bool:
        return address in self._addresses

    def address(self, address: str) -> AddressRecord:
        """The :class:`AddressRecord` for ``address``."""
        try:
            return self._addresses[address]
        except KeyError:
            raise UnknownAddressError(address) from None

    def address_by_id(self, address_id: int) -> AddressRecord:
        """The :class:`AddressRecord` for an interned address id."""
        try:
            return self._records_by_id[address_id]
        except IndexError:
            raise UnknownAddressError(f"id:{address_id}") from None

    def iter_addresses(self) -> Iterator[AddressRecord]:
        yield from self._addresses.values()

    @property
    def address_count(self) -> int:
        return len(self._addresses)

    def sink_addresses(self) -> list[str]:
        """Addresses that have received but never spent (paper §4.1)."""
        return [a for a, rec in self._addresses.items() if rec.is_sink]

    def input_address_ids(self, tx: Transaction) -> tuple[int, ...]:
        """Interned ids of the addresses a transaction spends from
        (deduplicated, insertion-ordered).  Empty for coinbases.

        Memoized per txid for transactions in the index: the clustering
        heuristics resolve the same senders repeatedly (H1 unions, H2
        candidate checks, dice lookups, FP replay).
        """
        txid = tx.txid
        cached = self._input_ids.get(txid)
        if cached is not None:
            return cached
        seen: dict[int, None] = {}
        for txin in tx.inputs:
            if txin.is_coinbase:
                continue
            addr = self.output(txin.prevout).address
            if addr is not None:
                seen.setdefault(self._interner.intern(addr))
        ids = tuple(seen)
        if txid in self._txs:
            self._input_ids[txid] = ids
        return ids

    def output_address_ids(self, tx: Transaction) -> tuple[int, ...]:
        """Interned ids of a transaction's output addresses, aligned with
        ``tx.outputs`` (-1 for outputs with no extractable address).

        Memoized per txid for transactions in the index: the service
        layer's materialized views (balances, activity) each credit the
        same outputs per block, and script → address extraction is the
        expensive part of that loop.

        For a transaction *not* in the index, addresses are resolved
        without allocating (-1 also covers never-interned addresses):
        interning here would inject phantom ids into the dense
        first-sight id space the per-height snapshot universes rely on.
        """
        txid = tx.txid
        cached = self._output_ids.get(txid)
        if cached is not None:
            return cached
        if txid in self._txs:
            # Ingestion already interned every output address; intern()
            # is a pure lookup here.
            intern = self._interner.intern
            ids = tuple(
                -1 if out.address is None else intern(out.address)
                for out in tx.outputs
            )
            self._output_ids[txid] = ids
            return ids
        id_of = self._interner.id_of
        ids = []
        for out in tx.outputs:
            address = out.address
            ident = id_of(address) if address is not None else None
            ids.append(-1 if ident is None else ident)
        return tuple(ids)

    def input_addresses(self, tx: Transaction) -> list[str]:
        """Addresses owning the outputs a transaction spends (deduplicated,
        insertion-ordered).  Empty for coinbases.  This is the reporting
        edge of :meth:`input_address_ids`."""
        return self._interner.addresses_of(self.input_address_ids(tx))

    def input_value(self, tx: Transaction) -> int:
        """Total satoshis consumed by a transaction's inputs."""
        if tx.is_coinbase:
            return 0
        return sum(self.output(txin.prevout).value for txin in tx.inputs)

    def fee(self, tx: Transaction) -> int:
        """Miner fee (inputs minus outputs); 0 for coinbases."""
        if tx.is_coinbase:
            return 0
        return self.input_value(tx) - tx.total_output_value

    # ------------------------------------------------------------------
    # temporal queries used by Heuristic 2 (§4.1/§4.2)
    # ------------------------------------------------------------------

    def appearances_before(self, address: str, height: int) -> int:
        """How many times ``address`` was paid strictly before ``height``."""
        record = self._addresses.get(address)
        if record is None:
            return 0
        return record.receives_before(height)

    def first_seen(self, address: str) -> int | None:
        """Height of the first receive, or ``None`` if never seen."""
        record = self._addresses.get(address)
        if record is None or not record.receives:
            return None
        return record.first_seen_height

    def self_change_heights(self, address: str) -> list[int]:
        """Heights at which ``address`` was used as a self-change address
        (appears among both the inputs and the outputs of one tx)."""
        return self._self_change_history.get(address, [])

    def was_self_change_before(self, address: str, height: int) -> bool:
        """True if the address served as self-change strictly before
        ``height`` (one of the §4.2 refinements)."""
        return any(h < height for h in self._self_change_history.get(address, ()))

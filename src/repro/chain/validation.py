"""Structural block/chain validation.

The simulator must emit a chain any real parser would accept, and the
re-parse pipeline must reject corrupted data.  This module checks the
consensus-shaped invariants that matter for the paper's analyses:

* block linkage (prev-hash chain) and merkle commitments;
* exactly one coinbase per block, placed first;
* every input resolves to an existing, unspent output (no double spends);
* value conservation: non-coinbase outputs never exceed inputs, and the
  coinbase claims at most subsidy + fees.

It deliberately skips proof-of-work (irrelevant to traceability) — the
paper's heuristics read the transaction graph, not difficulty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .errors import (
    BlockStructureError,
    ConservationError,
    DoubleSpendError,
    MissingInputError,
)
from .model import (
    Block,
    GENESIS_PREV_HASH,
    HALVING_INTERVAL,
    OutPoint,
    Transaction,
    block_subsidy,
    merkle_root,
)


@dataclass
class ValidationReport:
    """Outcome of a full-chain validation run."""

    blocks_checked: int = 0
    txs_checked: int = 0
    total_fees: int = 0
    total_subsidy: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def check_transaction_structure(tx: Transaction) -> None:
    """Raise on malformed transaction shape."""
    if not tx.inputs:
        raise BlockStructureError(f"{tx.txid_hex}: transaction has no inputs")
    if not tx.outputs:
        raise BlockStructureError(f"{tx.txid_hex}: transaction has no outputs")
    if any(out.value < 0 for out in tx.outputs):
        raise ConservationError(f"{tx.txid_hex}: negative output value")
    coinbase_inputs = sum(1 for txin in tx.inputs if txin.is_coinbase)
    if coinbase_inputs and (coinbase_inputs != 1 or len(tx.inputs) != 1):
        raise BlockStructureError(
            f"{tx.txid_hex}: coinbase input mixed with regular inputs"
        )
    seen: set[OutPoint] = set()
    for txin in tx.inputs:
        if txin.is_coinbase:
            continue
        if txin.prevout in seen:
            raise DoubleSpendError(
                f"{tx.txid_hex}: spends the same outpoint twice internally"
            )
        seen.add(txin.prevout)


def check_block_structure(block: Block, *, prev_hash: bytes | None = None) -> None:
    """Raise on malformed block shape (coinbase placement, merkle, linkage)."""
    if not block.transactions:
        raise BlockStructureError(f"block {block.height}: no transactions")
    if not block.transactions[0].is_coinbase:
        raise BlockStructureError(f"block {block.height}: first tx is not a coinbase")
    for tx in block.transactions[1:]:
        if tx.is_coinbase:
            raise BlockStructureError(
                f"block {block.height}: coinbase after position 0"
            )
    expected_root = merkle_root([tx.txid for tx in block.transactions])
    if block.header.merkle_root != expected_root:
        raise BlockStructureError(f"block {block.height}: merkle root mismatch")
    if prev_hash is not None and block.header.prev_hash != prev_hash:
        raise BlockStructureError(f"block {block.height}: broken prev-hash linkage")


class ChainValidator:
    """Streaming validator maintaining its own UTXO view.

    Feed blocks in order via :meth:`add_block`; raises on the first
    violation.  Use :func:`validate_chain` for a collected report.
    """

    def __init__(self, *, halving_interval: int = HALVING_INTERVAL) -> None:
        self._utxos: dict[OutPoint, int] = {}
        self._prev_hash: bytes = GENESIS_PREV_HASH
        self._height = -1
        self._halving_interval = halving_interval
        self.total_fees = 0
        self.total_subsidy = 0

    def add_block(self, block: Block) -> None:
        """Validate and account one block."""
        if block.height != self._height + 1:
            raise BlockStructureError(
                f"expected height {self._height + 1}, got {block.height}"
            )
        check_block_structure(block, prev_hash=self._prev_hash)
        block_fees = 0
        for tx in block.transactions[1:]:
            block_fees += self._apply_tx(tx)
        subsidy = block_subsidy(block.height, halving_interval=self._halving_interval)
        coinbase = block.coinbase
        check_transaction_structure(coinbase)
        claimed = coinbase.total_output_value
        if claimed > subsidy + block_fees:
            raise ConservationError(
                f"block {block.height}: coinbase claims {claimed} > "
                f"subsidy {subsidy} + fees {block_fees}"
            )
        for vout, out in enumerate(coinbase.outputs):
            self._utxos[OutPoint(coinbase.txid, vout)] = out.value
        self.total_fees += block_fees
        self.total_subsidy += claimed
        self._prev_hash = block.hash
        self._height = block.height

    def _apply_tx(self, tx: Transaction) -> int:
        check_transaction_structure(tx)
        if tx.is_coinbase:
            raise BlockStructureError(f"{tx.txid_hex}: unexpected coinbase")
        in_value = 0
        for txin in tx.inputs:
            value = self._utxos.pop(txin.prevout, None)
            if value is None:
                raise MissingInputError(
                    f"{tx.txid_hex}: missing or already-spent input "
                    f"{txin.prevout.txid[::-1].hex()}:{txin.prevout.vout}"
                )
            in_value += value
        out_value = tx.total_output_value
        if out_value > in_value:
            raise ConservationError(
                f"{tx.txid_hex}: outputs {out_value} exceed inputs {in_value}"
            )
        for vout, out in enumerate(tx.outputs):
            self._utxos[OutPoint(tx.txid, vout)] = out.value
        return in_value - out_value

    @property
    def utxo_value(self) -> int:
        """Total unspent value tracked so far."""
        return sum(self._utxos.values())


def validate_chain(
    blocks: Iterable[Block], *, halving_interval: int = HALVING_INTERVAL
) -> ValidationReport:
    """Validate a whole chain, collecting problems instead of raising."""
    validator = ChainValidator(halving_interval=halving_interval)
    report = ValidationReport()
    for block in blocks:
        try:
            validator.add_block(block)
        except Exception as exc:  # noqa: BLE001 - report, don't mask type
            report.problems.append(f"block {block.height}: {exc}")
            break
        report.blocks_checked += 1
        report.txs_checked += len(block.transactions)
    report.total_fees = validator.total_fees
    report.total_subsidy = validator.total_subsidy
    return report

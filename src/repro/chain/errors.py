"""Exception hierarchy for the chain substrate.

Every error raised by :mod:`repro.chain` derives from :class:`ChainError`,
so callers can catch one base class when dealing with untrusted input
(e.g. when re-parsing serialized block files).
"""

from __future__ import annotations


class ChainError(Exception):
    """Base class for all chain-substrate errors."""


class SerializationError(ChainError):
    """Raised when encoding or decoding wire-format bytes fails."""


class TruncatedDataError(SerializationError):
    """Raised when a decoder runs out of bytes mid-structure."""


class Base58Error(ChainError):
    """Raised on malformed base58check payloads (bad alphabet/checksum)."""


class ScriptError(ChainError):
    """Raised when a script cannot be built or recognized."""


class ValidationError(ChainError):
    """Base class for consensus-style validation failures."""


class DoubleSpendError(ValidationError):
    """Raised when a transaction spends an already-spent output."""


class MissingInputError(ValidationError):
    """Raised when a transaction references an unknown outpoint."""


class ConservationError(ValidationError):
    """Raised when outputs exceed inputs (non-coinbase) or subsidy rules break."""


class BlockStructureError(ValidationError):
    """Raised on malformed blocks (bad coinbase placement, merkle mismatch...)."""


class NonMonotonicTimestampError(ChainError):
    """Raised when a streaming consumer that relies on non-decreasing
    block timestamps (the §4.2 wait-window clamp) observes a block whose
    timestamp runs backwards."""


class UnknownTransactionError(ChainError, KeyError):
    """Raised when a txid lookup misses the index."""


class UnknownAddressError(ChainError, KeyError):
    """Raised when an address lookup misses the index."""

"""Bitcoin wire-format serialization.

Implements the exact byte layout Bitcoin uses for transactions, block
headers, and blocks (little-endian integers, CompactSize varints), so
``sha256d(serialize_tx(tx))`` is a faithful txid and block files written
by :mod:`repro.chain.blockfile` could in principle be inspected by any
Bitcoin block parser.

Decoders are defensive: all reads go through a bounds-checked
:class:`ByteReader` and raise :class:`TruncatedDataError` /
:class:`SerializationError` on malformed input instead of ``IndexError``.
"""

from __future__ import annotations

import struct

from .errors import SerializationError, TruncatedDataError
from .model import Block, BlockHeader, OutPoint, Transaction, TxIn, TxOut

_MAX_VARINT = 0xFFFFFFFFFFFFFFFF
_MAX_SCRIPT_LEN = 10_000
_MAX_TX_ITEMS = 1_000_000  # sanity bound on input/output counts


class ByteReader:
    """A bounds-checked cursor over immutable bytes."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self._data = data
        self._pos = pos

    @property
    def pos(self) -> int:
        """Current read offset."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Bytes left to read."""
        return len(self._data) - self._pos

    def read(self, n: int) -> bytes:
        """Read exactly ``n`` bytes or raise :class:`TruncatedDataError`."""
        if n < 0:
            raise SerializationError(f"negative read length {n}")
        if self.remaining < n:
            raise TruncatedDataError(
                f"wanted {n} bytes at offset {self._pos}, only {self.remaining} left"
            )
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    def read_u8(self) -> int:
        return self.read(1)[0]

    def read_u16(self) -> int:
        return struct.unpack("<H", self.read(2))[0]

    def read_u32(self) -> int:
        return struct.unpack("<I", self.read(4))[0]

    def read_u64(self) -> int:
        return struct.unpack("<Q", self.read(8))[0]

    def read_i64(self) -> int:
        return struct.unpack("<q", self.read(8))[0]


def encode_varint(n: int) -> bytes:
    """Encode a CompactSize unsigned integer."""
    if n < 0 or n > _MAX_VARINT:
        raise SerializationError(f"varint out of range: {n}")
    if n < 0xFD:
        return bytes([n])
    if n <= 0xFFFF:
        return b"\xfd" + struct.pack("<H", n)
    if n <= 0xFFFFFFFF:
        return b"\xfe" + struct.pack("<I", n)
    return b"\xff" + struct.pack("<Q", n)


def decode_varint(reader: ByteReader) -> int:
    """Decode a CompactSize unsigned integer, rejecting non-canonical forms."""
    prefix = reader.read_u8()
    if prefix < 0xFD:
        return prefix
    if prefix == 0xFD:
        value = reader.read_u16()
        minimum = 0xFD
    elif prefix == 0xFE:
        value = reader.read_u32()
        minimum = 0x10000
    else:
        value = reader.read_u64()
        minimum = 0x100000000
    if value < minimum:
        raise SerializationError(f"non-canonical varint encoding of {value}")
    return value


def _encode_script(script: bytes) -> bytes:
    return encode_varint(len(script)) + script


def _decode_script(reader: ByteReader, *, what: str) -> bytes:
    length = decode_varint(reader)
    if length > _MAX_SCRIPT_LEN:
        raise SerializationError(f"{what} length {length} exceeds {_MAX_SCRIPT_LEN}")
    return reader.read(length)


def serialize_txin(txin: TxIn) -> bytes:
    """Serialize one transaction input."""
    return (
        txin.prevout.txid
        + struct.pack("<I", txin.prevout.vout)
        + _encode_script(txin.script_sig)
        + struct.pack("<I", txin.sequence)
    )


def deserialize_txin(reader: ByteReader) -> TxIn:
    """Decode one transaction input."""
    txid = reader.read(32)
    vout = reader.read_u32()
    script_sig = _decode_script(reader, what="scriptSig")
    sequence = reader.read_u32()
    return TxIn(prevout=OutPoint(txid, vout), script_sig=script_sig, sequence=sequence)


def serialize_txout(txout: TxOut) -> bytes:
    """Serialize one transaction output."""
    if txout.value < 0:
        raise SerializationError(f"negative output value {txout.value}")
    return struct.pack("<q", txout.value) + _encode_script(txout.script_pubkey)


def deserialize_txout(reader: ByteReader) -> TxOut:
    """Decode one transaction output."""
    value = reader.read_i64()
    if value < 0:
        raise SerializationError(f"negative output value {value}")
    script_pubkey = _decode_script(reader, what="scriptPubKey")
    return TxOut(value=value, script_pubkey=script_pubkey)


def serialize_tx(tx: Transaction) -> bytes:
    """Serialize a transaction in the legacy (pre-segwit) wire format."""
    parts = [struct.pack("<i", tx.version), encode_varint(len(tx.inputs))]
    parts.extend(serialize_txin(txin) for txin in tx.inputs)
    parts.append(encode_varint(len(tx.outputs)))
    parts.extend(serialize_txout(txout) for txout in tx.outputs)
    parts.append(struct.pack("<I", tx.lock_time))
    return b"".join(parts)


def deserialize_tx(reader: ByteReader) -> Transaction:
    """Decode a transaction."""
    version = struct.unpack("<i", reader.read(4))[0]
    n_in = decode_varint(reader)
    if n_in == 0 or n_in > _MAX_TX_ITEMS:
        raise SerializationError(f"implausible input count {n_in}")
    inputs = tuple(deserialize_txin(reader) for _ in range(n_in))
    n_out = decode_varint(reader)
    if n_out == 0 or n_out > _MAX_TX_ITEMS:
        raise SerializationError(f"implausible output count {n_out}")
    outputs = tuple(deserialize_txout(reader) for _ in range(n_out))
    lock_time = reader.read_u32()
    return Transaction(
        inputs=inputs, outputs=outputs, version=version, lock_time=lock_time
    )


def tx_from_bytes(data: bytes) -> Transaction:
    """Decode a transaction from a standalone byte string."""
    reader = ByteReader(data)
    tx = deserialize_tx(reader)
    if reader.remaining:
        raise SerializationError(f"{reader.remaining} trailing bytes after transaction")
    return tx


def serialize_header(header: BlockHeader) -> bytes:
    """Serialize the 80-byte block header."""
    return (
        struct.pack("<i", header.version)
        + header.prev_hash
        + header.merkle_root
        + struct.pack("<III", header.timestamp, header.bits, header.nonce)
    )


def deserialize_header(reader: ByteReader) -> BlockHeader:
    """Decode an 80-byte block header."""
    version = struct.unpack("<i", reader.read(4))[0]
    prev_hash = reader.read(32)
    merkle_root_ = reader.read(32)
    timestamp, bits, nonce = struct.unpack("<III", reader.read(12))
    return BlockHeader(
        version=version,
        prev_hash=prev_hash,
        merkle_root=merkle_root_,
        timestamp=timestamp,
        bits=bits,
        nonce=nonce,
    )


def serialize_block(block: Block) -> bytes:
    """Serialize header + tx count + transactions."""
    parts = [serialize_header(block.header), encode_varint(len(block.transactions))]
    parts.extend(serialize_tx(tx) for tx in block.transactions)
    return b"".join(parts)


def deserialize_block(reader: ByteReader, *, height: int) -> Block:
    """Decode a block.  ``height`` is supplied by the caller (block files
    don't embed it; readers track it positionally, as real parsers do)."""
    header = deserialize_header(reader)
    n_tx = decode_varint(reader)
    if n_tx == 0 or n_tx > _MAX_TX_ITEMS:
        raise SerializationError(f"implausible transaction count {n_tx}")
    txs = tuple(deserialize_tx(reader) for _ in range(n_tx))
    return Block(header=header, transactions=txs, height=height)


def block_from_bytes(data: bytes, *, height: int) -> Block:
    """Decode a block from a standalone byte string."""
    reader = ByteReader(data)
    block = deserialize_block(reader, height=height)
    if reader.remaining:
        raise SerializationError(f"{reader.remaining} trailing bytes after block")
    return block

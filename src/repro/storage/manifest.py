"""The snapshot manifest: the small JSON file that makes a snapshot real.

A snapshot directory holds one segment per component plus
``MANIFEST.json``.  The manifest is written last (and the whole
directory renamed into place after that), so its presence is the commit
point: a directory without a readable manifest is an aborted snapshot
and is ignored by the store.  It records:

* ``format`` / ``format_version`` — the snapshot layout version;
* ``height`` — the chain height every component state was captured at;
* ``chain`` — cheap consistency facts (tx/address counts, tip
  timestamp) used for sanity checks and reporting;
* ``segments`` — per component: filename, byte size, and the sha256 the
  segment file must hash to (so a segment swapped in from another
  snapshot fails closed even though it is internally consistent).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from .errors import SnapshotIntegrityError

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT = "repro-state-snapshot"
MANIFEST_VERSION = 4
"""Snapshot layout version.  2 added the ``aggregates`` segment (the
differential cluster-aggregate view) and the engine's settled-label
field; version-1 snapshots are rejected rather than part-restored.
3 switched the dense per-id view/engine arrays to raw int64 bytes
buffers inside the segments — the component ``from_state`` readers
accept both shapes, so version-2 snapshots stay restorable
(:data:`SUPPORTED_VERSIONS`).  4 added the *optional* ``timetravel``
segment (the aggregate view's per-height delta log, horizon base, and
checkpoint spine anchor); v2/v3 snapshots restore without it — the
restored service re-seeds its time-travel base at the snapshot height
instead of recovering the full historical log."""

SUPPORTED_VERSIONS = frozenset({2, 3, MANIFEST_VERSION})
"""Manifest versions :func:`read_manifest` accepts."""


@dataclass(frozen=True)
class SnapshotManifest:
    """Parsed manifest of one snapshot directory."""

    height: int
    chain: dict
    segments: dict[str, dict]
    created_unix: float
    format_version: int = MANIFEST_VERSION
    path: Path | None = field(default=None, compare=False)

    @property
    def directory(self) -> Path:
        """The snapshot directory this manifest was read from."""
        if self.path is None:
            raise ValueError("manifest was not read from disk")
        return self.path.parent

    def to_json(self) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "format_version": self.format_version,
            "height": self.height,
            "created_unix": self.created_unix,
            "chain": self.chain,
            "segments": self.segments,
        }


def write_manifest(directory: str | os.PathLike[str], manifest: SnapshotManifest) -> Path:
    """Write ``MANIFEST.json`` durably (flush + fsync) into ``directory``."""
    path = Path(directory) / MANIFEST_NAME
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest.to_json(), fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    return path


def read_manifest(directory: str | os.PathLike[str]) -> SnapshotManifest:
    """Read and validate a snapshot directory's manifest."""
    path = Path(directory) / MANIFEST_NAME

    def bad(reason: str) -> SnapshotIntegrityError:
        return SnapshotIntegrityError(f"manifest {path}: {reason}")

    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError as exc:
        raise bad("missing (snapshot incomplete?)") from exc
    except (OSError, json.JSONDecodeError) as exc:
        raise bad(f"unreadable ({exc})") from exc
    if raw.get("format") != MANIFEST_FORMAT:
        raise bad(f"unknown format {raw.get('format')!r}")
    if raw.get("format_version") not in SUPPORTED_VERSIONS:
        raise bad(f"unsupported format version {raw.get('format_version')!r}")
    try:
        return SnapshotManifest(
            height=int(raw["height"]),
            chain=dict(raw["chain"]),
            segments={
                name: dict(record) for name, record in raw["segments"].items()
            },
            created_unix=float(raw["created_unix"]),
            format_version=int(raw["format_version"]),
            path=path,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise bad(f"malformed field ({exc})") from exc

"""Durable state: snapshot/restore + tail replay for the serving layer.

The PR 1/PR 2 engines made the paper's full-chain analysis single-pass
and servable — but in-memory only, so every restart replayed from block
0.  This package bounds recovery by the *tail since the last snapshot*
instead:

* :mod:`~repro.storage.segments` — the per-component segment file
  format (versioned, checksummed, plain-data payloads);
* :mod:`~repro.storage.manifest` — the JSON manifest that commits a
  snapshot (written last; no manifest ⇒ no snapshot);
* :mod:`~repro.storage.store` — :class:`StateStore`
  (``snapshot``/``restore``/``warm_start`` with block-file tail replay)
  and :class:`SnapshotPolicy` (every-N-blocks capture, retain-K
  pruning).

The restore contract is *provable equivalence*: a restored-then-tail-
replayed service answers every query identically to one built cold from
block 0 (``tests/storage/test_restore_equivalence.py`` asserts it at
every snapshot height).
"""

from .errors import NoSnapshotError, SnapshotIntegrityError, StorageError
from .manifest import SnapshotManifest, read_manifest, write_manifest
from .segments import read_segment, write_segment
from .store import (
    COMPONENTS,
    OPTIONAL_COMPONENTS,
    SnapshotPolicy,
    StateStore,
    WarmStart,
)

__all__ = [
    "COMPONENTS",
    "OPTIONAL_COMPONENTS",
    "NoSnapshotError",
    "SnapshotIntegrityError",
    "SnapshotManifest",
    "SnapshotPolicy",
    "StateStore",
    "StorageError",
    "WarmStart",
    "read_manifest",
    "read_segment",
    "write_manifest",
    "write_segment",
]

"""The state store: snapshot, restore, tail replay, retention.

:class:`StateStore` turns a directory into durable analysis state for a
:class:`~repro.service.service.ForensicsService`.  One snapshot is one
subdirectory (``snap-<height>``) of per-component segment files plus a
manifest, built atomically: segments are written and fsynced into a
hidden scratch directory, the manifest (the commit point) is written
last, and the directory is renamed into place — a crash mid-snapshot
leaves either the previous snapshots untouched or an ignorable scratch
directory, never a half-readable snapshot.

Recovery is the inverse plus *tail replay*: :meth:`StateStore.warm_start`
restores the newest snapshot (height ``h``) and re-ingests only blocks
``h+1..`` from the block files through
:meth:`ChainIndex.add_block <repro.chain.index.ChainIndex.add_block>`,
so the restored engine and views stream the tail through the exact
observer fan-out a never-restarted service used — which is why the
equivalence property test can demand bit-for-bit identical answers.
Recovery time is bounded by the snapshot size plus the tail length, not
the chain length (``benchmarks/bench_snapshot_restore.py`` pins the
payoff at ≥10× over cold replay).

:class:`SnapshotPolicy` automates capture: attached *after* the service
(so the fan-out order guarantees every component has folded the block
first), it snapshots every ``every`` blocks and prunes to the ``retain``
newest.
"""

from __future__ import annotations

import gc
import os
import shutil
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

from ..chain.blockfile import BlockFileReader
from ..chain.index import ChainIndex
from ..obs import NULL_LOGGER, NULL_REGISTRY
from ..service.service import ForensicsService
from .errors import NoSnapshotError, SnapshotIntegrityError, StorageError
from .manifest import (
    MANIFEST_VERSION,
    SnapshotManifest,
    read_manifest,
    write_manifest,
)
from .segments import read_segment, write_segment

SNAPSHOT_PREFIX = "snap-"
_SCRATCH_PREFIX = ".tmp-"

COMPONENTS = (
    "chain",
    "engine",
    "aggregates",
    "balances",
    "activity",
    "taint",
    "service",
)
"""Segment names, one per durable component of a forensics service."""

OPTIONAL_COMPONENTS = ("timetravel",)
"""Segments a manifest may list but does not have to: ``timetravel``
(manifest v4) carries the aggregate view's per-height delta log and
horizon base.  A snapshot without it (v2/v3, or a view built with
``time_travel=False``) restores fine — historical horizons below the
snapshot height just fall back to the batch rebuild."""


@contextmanager
def _bulk_allocation():
    """Pause the cyclic GC across a bulk (de)serialization.

    Exported states are acyclic plain data, but allocating hundreds of
    thousands of containers in one burst trips repeated generation-2
    collections — each of which walks every live object in the process
    (the whole chain, in a serving process).  Pausing the collector for
    the burst routinely cuts snapshot/restore wall time several-fold;
    nothing allocated here is cyclic garbage, so nothing is lost.
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        # Promote the burst's survivors out of the young generations
        # before re-enabling: a young collect walks only the new plain
        # data (cheap), so re-enabling doesn't schedule an imminent
        # full collection whose old-heap walk would land on whatever
        # the caller times next.
        gc.collect(1)
        gc.enable()


@dataclass(frozen=True)
class WarmStart:
    """Result of :meth:`StateStore.warm_start`."""

    service: ForensicsService
    snapshot_height: int
    tail_blocks: int

    @property
    def height(self) -> int:
        """The service's height after tail replay."""
        return self.service.height


class StateStore:
    """Snapshots of forensics-service state under one root directory."""

    def __init__(
        self,
        root: str | os.PathLike[str],
        *,
        clock=time.time,
        metrics=None,
        log=None,
    ) -> None:
        """``clock`` stamps each manifest's ``created_unix`` — injected
        so tests can pin wall-clock fields; durations are always
        measured with the monotonic ``perf_counter`` regardless.
        ``metrics`` is an optional
        :class:`~repro.obs.MetricsRegistry` that receives
        snapshot/restore timings, byte counts, and integrity failures.
        ``log`` is an optional :class:`~repro.obs.EventLogger` that
        records snapshot/restore events and integrity failures.
        """
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.log = log if log is not None else NULL_LOGGER
        self.last_snapshot_seconds: float | None = None
        self.last_restore_seconds: float | None = None

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------

    def snapshot(self, service: ForensicsService) -> Path:
        """Capture the full analysis state at the service's height.

        Components must agree on the height (they always do between
        blocks, and during fan-out for observers registered after the
        service's own).  Re-snapshotting an existing height replaces the
        old snapshot atomically.
        """
        height = service.height
        if height < 0:
            raise StorageError("cannot snapshot a service with no blocks")
        if service.aggregates is None:
            raise StorageError(
                "cannot snapshot a service built with "
                "differential_aggregates=False; the aggregates segment "
                "is part of the snapshot format"
            )
        for name, component_height in (
            ("engine", service.engine.height),
            ("aggregates", service.aggregates.height),
            ("balances", service.balances.height),
            ("activity", service.activity.height),
            ("taint", service.taint.height),
        ):
            if component_height != height:
                raise StorageError(
                    f"component {name} is at height {component_height}, "
                    f"index at {height}; snapshot requires a consistent "
                    f"service (is it detached?)"
                )
        final = self.root / f"{SNAPSHOT_PREFIX}{height:08d}"
        scratch = self.root / f"{_SCRATCH_PREFIX}{final.name}-{os.getpid()}"
        if scratch.exists():
            shutil.rmtree(scratch)
        scratch.mkdir(parents=True)
        start = perf_counter()
        try:
            index = service.index
            with _bulk_allocation():
                segments = self._write_segments(scratch, service)
            manifest = SnapshotManifest(
                height=height,
                chain={
                    "tx_count": index.tx_count,
                    "address_count": index.address_count,
                    "tip_timestamp": index.timestamp_at(height),
                },
                segments=segments,
                created_unix=self._clock(),
                format_version=MANIFEST_VERSION,
            )
            write_manifest(scratch, manifest)
            if final.exists():
                shutil.rmtree(final)
            os.rename(scratch, final)
        except BaseException:
            shutil.rmtree(scratch, ignore_errors=True)
            raise
        seconds = perf_counter() - start
        self.last_snapshot_seconds = seconds
        metrics = self.metrics
        if metrics.enabled:
            total_bytes = sum(record["bytes"] for record in segments.values())
            metrics.histogram("store.snapshot_seconds").observe(seconds)
            metrics.counter("store.snapshot_bytes").inc(total_bytes)
            metrics.flight.record(
                "snapshot",
                height=height,
                bytes=total_bytes,
                seconds=seconds,
            )
        if self.log.enabled:
            self.log.info(
                "snapshot_written",
                height=height,
                directory=str(final),
                seconds=seconds,
            )
        return final

    @staticmethod
    def _write_segments(scratch: Path, service: ForensicsService) -> dict:
        segments = {
            "chain": write_segment(scratch, "chain", service.index.export_state()),
            "engine": write_segment(scratch, "engine", service.engine.export_state()),
            "aggregates": write_segment(
                scratch, "aggregates", service.aggregates.export_state()
            ),
            "balances": write_segment(
                scratch, "balances", service.balances.export_state()
            ),
            "activity": write_segment(
                scratch, "activity", service.activity.export_state()
            ),
            "taint": write_segment(scratch, "taint", service.taint.export_state()),
            "service": write_segment(scratch, "service", service.export_state()),
        }
        timetravel = service.aggregates.export_time_travel()
        if timetravel is not None:
            segments["timetravel"] = write_segment(
                scratch, "timetravel", timetravel
            )
        return segments

    # ------------------------------------------------------------------
    # discovery / retention
    # ------------------------------------------------------------------

    def snapshots(self) -> list[SnapshotManifest]:
        """Manifests of every *valid* snapshot, oldest to newest.

        Directories without a readable manifest (aborted captures,
        foreign clutter) are skipped, not raised on — recovery should
        fall back to the newest snapshot that actually committed.
        """
        found: list[SnapshotManifest] = []
        for path in sorted(self.root.glob(f"{SNAPSHOT_PREFIX}*")):
            if not path.is_dir():
                continue
            try:
                found.append(read_manifest(path))
            except SnapshotIntegrityError:
                continue
        found.sort(key=lambda manifest: manifest.height)
        return found

    def latest(self) -> SnapshotManifest | None:
        """The newest valid snapshot, or ``None``."""
        snapshots = self.snapshots()
        return snapshots[-1] if snapshots else None

    def prune(self, retain: int) -> list[Path]:
        """Delete all but the ``retain`` newest snapshots; returns the
        removed directories.  Scratch directories are always removed."""
        if retain < 1:
            raise ValueError("retain must be at least 1")
        removed: list[Path] = []
        for stale in self.root.glob(f"{_SCRATCH_PREFIX}*"):
            shutil.rmtree(stale, ignore_errors=True)
            removed.append(stale)
        for manifest in self.snapshots()[:-retain]:
            directory = manifest.directory
            shutil.rmtree(directory)
            removed.append(directory)
        return removed

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def restore(
        self,
        snapshot: SnapshotManifest | None = None,
        *,
        follow: bool = True,
    ) -> ForensicsService:
        """Rebuild a live service from a snapshot (default: the newest).

        Every segment is checksum-verified against the manifest before
        a byte of it is deserialized; the restored components are
        height-checked against each other.  The returned service is
        immediately queryable at the snapshot height and, with
        ``follow``, resumes streaming from the next ``add_block``.
        """
        if snapshot is None:
            snapshot = self.latest()
            if snapshot is None:
                raise NoSnapshotError(f"no snapshots under {self.root}")
        directory = snapshot.directory
        metrics = self.metrics
        start = perf_counter()
        try:
            states = {}
            total_bytes = 0
            with _bulk_allocation():
                for name in COMPONENTS:
                    record = snapshot.segments.get(name)
                    if record is None:
                        raise SnapshotIntegrityError(
                            f"snapshot {directory} lists no {name!r} segment"
                        )
                    states[name] = read_segment(
                        directory / record["file"],
                        expected_name=name,
                        expected_sha256=record["sha256"],
                    )
                    total_bytes += record.get("bytes", 0)
                for name in OPTIONAL_COMPONENTS:
                    record = snapshot.segments.get(name)
                    if record is None:
                        continue  # pre-v4 snapshot, or time travel off
                    states[name] = read_segment(
                        directory / record["file"],
                        expected_name=name,
                        expected_sha256=record["sha256"],
                    )
                    total_bytes += record.get("bytes", 0)
                index = ChainIndex.restore_state(states["chain"])
            if index.height != snapshot.height:
                raise SnapshotIntegrityError(
                    f"snapshot {directory} manifest says height "
                    f"{snapshot.height} but the chain segment restores to "
                    f"{index.height}"
                )
            if index.tx_count != snapshot.chain.get("tx_count"):
                raise SnapshotIntegrityError(
                    f"snapshot {directory} chain segment holds "
                    f"{index.tx_count} txs, manifest promises "
                    f"{snapshot.chain.get('tx_count')}"
                )
            service = ForensicsService.from_snapshot(
                index,
                states,
                follow=follow,
                metrics=metrics if metrics.enabled else None,
                log=self.log if self.log.enabled else None,
            )
        except SnapshotIntegrityError as exc:
            metrics.counter("store.integrity_failures").inc()
            if self.log.enabled:
                self.log.error(
                    "snapshot_integrity_failure",
                    directory=str(directory),
                    error=repr(exc),
                )
            raise
        seconds = perf_counter() - start
        self.last_restore_seconds = seconds
        if metrics.enabled:
            metrics.histogram("store.restore_seconds").observe(seconds)
            metrics.counter("store.restore_bytes").inc(total_bytes)
            metrics.flight.record(
                "restore",
                height=snapshot.height,
                bytes=total_bytes,
                seconds=seconds,
            )
        if self.log.enabled:
            self.log.info(
                "snapshot_restored",
                height=snapshot.height,
                directory=str(directory),
                seconds=seconds,
            )
        return service

    def verify_snapshot(self, snapshot: SnapshotManifest) -> list[str]:
        """Checksum-verify every segment of one snapshot, without
        deserializing into a service.

        Returns a list of human-readable problems (empty when the
        snapshot is intact); used by ``repro doctor`` to grade each
        snapshot on disk independently of whether it will be restored.
        """
        directory = snapshot.directory
        problems: list[str] = []
        for name in COMPONENTS + OPTIONAL_COMPONENTS:
            record = snapshot.segments.get(name)
            if record is None:
                if name in OPTIONAL_COMPONENTS:
                    continue  # pre-v4 snapshot, or time travel off
                problems.append(f"manifest lists no {name!r} segment")
                continue
            try:
                read_segment(
                    directory / record["file"],
                    expected_name=name,
                    expected_sha256=record["sha256"],
                )
            except (SnapshotIntegrityError, OSError) as exc:
                problems.append(f"segment {name!r}: {exc}")
        if problems:
            self.metrics.counter("store.integrity_failures").inc(
                len(problems)
            )
            if self.log.enabled:
                self.log.error(
                    "snapshot_verify_failed",
                    directory=str(directory),
                    problems=len(problems),
                )
        return problems

    def warm_start(
        self,
        blocks: str | os.PathLike[str],
        *,
        snapshot: SnapshotManifest | None = None,
    ) -> WarmStart:
        """Restore the newest snapshot, then tail-replay from block files.

        ``blocks`` is a ``blk*.dat`` directory (or single file) holding
        at least the snapshot's prefix; records past the snapshot height
        are re-ingested through the normal observer fan-out.  The block
        files below the resume point are skipped with frame arithmetic —
        never parsed — so recovery cost is snapshot size + tail length.
        """
        service = self.restore(snapshot)
        reader = BlockFileReader(blocks)
        tail = 0
        snapshot_height = service.height
        for block in reader.iter_blocks(start_height=snapshot_height + 1):
            service.index.add_block(block)
            tail += 1
        return WarmStart(
            service=service,
            snapshot_height=snapshot_height,
            tail_blocks=tail,
        )


class SnapshotPolicy:
    """Periodic snapshot capture with bounded retention.

    Attach *after* the service is constructed: observers fire in
    registration order, so the policy sees each block only when the
    engine and every view have already folded it — the state it
    captures is the consistent post-block state.  A snapshot failure
    propagates out of ``add_block`` (the chain fan-out still notifies
    every other observer first); durability problems should be loud.
    """

    def __init__(
        self, store: StateStore, *, every: int = 100, retain: int = 3
    ) -> None:
        if every < 1:
            raise ValueError("every must be at least 1")
        if retain < 1:
            raise ValueError("retain must be at least 1")
        self.store = store
        self.every = every
        self.retain = retain
        self.snapshots_taken = 0
        self._unsubscribe = None

    def attach(self, service: ForensicsService) -> "SnapshotPolicy":
        """Start snapshotting ``service`` every ``every`` blocks."""
        if self._unsubscribe is not None:
            raise StorageError("policy is already attached")

        def _on_block(block) -> None:
            if (block.height + 1) % self.every == 0:
                self.store.snapshot(service)
                self.snapshots_taken += 1
                self.store.prune(self.retain)

        self._unsubscribe = service.index.subscribe(_on_block)
        return self

    def detach(self) -> None:
        """Stop snapshotting (already-written snapshots remain)."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

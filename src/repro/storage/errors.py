"""Errors raised by the durable state store."""

from __future__ import annotations


class StorageError(Exception):
    """Base class for state-store failures."""


class SnapshotIntegrityError(StorageError):
    """A snapshot file is corrupt, truncated, or mismatched against its
    manifest — the snapshot must not be restored."""


class NoSnapshotError(StorageError):
    """A restore was requested but the store holds no usable snapshot."""

"""Segment files: one durable component state per file.

A segment is the unit of snapshot I/O — one component's exported state
(chain index, clustering engine, one materialized view, service config)
written as a single self-validating file::

    offset  field
    ------  -----------------------------------------------------------
    0       magic ``RSSG`` (repro state segment)
    4       u16   format version (little-endian)
    6       u16   component-name length
    8       component name (ASCII)
    8+n     u64   payload length (little-endian)
    16+n    payload — pickle (protocol 5) of the component's plain-data
            exported state
    ...     sha256 digest of every preceding byte (32 bytes)

The payload is pickle because exported states are *plain data by
contract* (primitives, bytes, tuples, lists, dicts — see each
component's ``export_state``), which pickle round-trips at C speed; the
restore path's cost is bounded by the flat bytes, not by the object
graph the live component will lazily rebuild.  Snapshots are local
operator state in the same trust domain as the code and block files
themselves — the checksum defends against corruption and truncation,
not against an adversary who can already write to the data directory.

Reads verify, in order: magic, version, component name, payload length,
and the sha256 footer — all *before* unpickling a byte of payload — and
raise :class:`~repro.storage.errors.SnapshotIntegrityError` with the
failing file named.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
from pathlib import Path

from .errors import SnapshotIntegrityError

SEGMENT_MAGIC = b"RSSG"
SEGMENT_VERSION = 1
SEGMENT_SUFFIX = ".seg"

_FIXED_HEADER = struct.Struct("<4sHH")
_PAYLOAD_LEN = struct.Struct("<Q")
_DIGEST_BYTES = 32


def segment_filename(name: str) -> str:
    """The on-disk filename for a component segment."""
    return f"{name}{SEGMENT_SUFFIX}"


def write_segment(directory: str | os.PathLike[str], name: str, state) -> dict:
    """Write one component segment; returns its manifest record.

    The record (``{"file", "bytes", "sha256"}``) is what the snapshot
    manifest stores so a later read can verify the exact file it
    expects.  The file is flushed and fsynced before returning — a
    snapshot directory is renamed into place only after every segment
    is durable.
    """
    encoded_name = name.encode("ascii")
    payload = pickle.dumps(state, protocol=5)
    header = _FIXED_HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, len(encoded_name))
    body = header + encoded_name + _PAYLOAD_LEN.pack(len(payload)) + payload
    digest = hashlib.sha256(body).digest()
    path = Path(directory) / segment_filename(name)
    with open(path, "wb") as fh:
        fh.write(body)
        fh.write(digest)
        fh.flush()
        os.fsync(fh.fileno())
    return {
        "file": path.name,
        "bytes": len(body) + _DIGEST_BYTES,
        "sha256": digest.hex(),
    }


def read_segment(
    path: str | os.PathLike[str],
    *,
    expected_name: str | None = None,
    expected_sha256: str | None = None,
):
    """Read and verify one segment; returns the unpickled state.

    Every structural check (magic, version, name, length, checksum)
    runs before the payload is unpickled, so a corrupt or swapped file
    fails closed with :class:`SnapshotIntegrityError`.
    """
    path = Path(path)

    def bad(reason: str) -> SnapshotIntegrityError:
        return SnapshotIntegrityError(f"segment {path}: {reason}")

    try:
        data = path.read_bytes()
    except OSError as exc:
        raise bad(f"unreadable ({exc})") from exc
    if len(data) < _FIXED_HEADER.size + _PAYLOAD_LEN.size + _DIGEST_BYTES:
        raise bad("truncated header")
    magic, version, name_length = _FIXED_HEADER.unpack_from(data)
    if magic != SEGMENT_MAGIC:
        raise bad(f"bad magic {magic!r}")
    if version != SEGMENT_VERSION:
        raise bad(f"unsupported segment version {version}")
    name_end = _FIXED_HEADER.size + name_length
    if len(data) < name_end + _PAYLOAD_LEN.size + _DIGEST_BYTES:
        raise bad("truncated name")
    name = data[_FIXED_HEADER.size:name_end].decode("ascii")
    if expected_name is not None and name != expected_name:
        raise bad(f"holds component {name!r}, expected {expected_name!r}")
    (payload_length,) = _PAYLOAD_LEN.unpack_from(data, name_end)
    body_end = name_end + _PAYLOAD_LEN.size + payload_length
    if len(data) != body_end + _DIGEST_BYTES:
        raise bad(
            f"length mismatch: header promises {payload_length} payload "
            f"bytes, file holds {len(data) - name_end - _PAYLOAD_LEN.size - _DIGEST_BYTES}"
        )
    digest = hashlib.sha256(data[:body_end]).digest()
    if digest != data[body_end:]:
        raise bad("sha256 checksum mismatch (corrupt payload)")
    if expected_sha256 is not None and digest.hex() != expected_sha256:
        raise bad("sha256 does not match the manifest (segment swapped?)")
    return pickle.loads(data[name_end + _PAYLOAD_LEN.size : body_end])

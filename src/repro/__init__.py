"""repro — reproduction of "A Fistful of Bitcoins" (Meiklejohn et al., IMC 2013).

A blockchain-forensics library: a Bitcoin chain substrate and synthetic
economy, the paper's address-clustering heuristics (multi-input and
one-time change with the §4.2 refinement ladder), service tagging, and
the flow analyses (peeling chains, theft tracking, category balances).

Quickstart::

    from repro.simulation import scenarios
    from repro.core import ClusteringEngine

    world = scenarios.default_economy(seed=7)
    clustering = ClusteringEngine(world.index).cluster()
    print(clustering.cluster_count)
"""

__version__ = "1.0.0"

from .chain import COIN, ChainIndex, btc, format_btc
from .core import ClusteringEngine, Heuristic2Config
from .pipeline import AnalystView
from .tagging import ClusterNaming, TagStore

__all__ = [
    "AnalystView",
    "COIN",
    "ChainIndex",
    "ClusterNaming",
    "ClusteringEngine",
    "Heuristic2Config",
    "TagStore",
    "btc",
    "format_btc",
    "__version__",
]

"""Exports: CSV/JSON artifacts and GraphML graphs."""

from .export import (
    export_clusters_csv,
    export_naming_json,
    export_peel_chain_json,
    export_tags_csv,
)
from .graphml import export_user_graph_graphml

__all__ = [
    "export_clusters_csv",
    "export_naming_json",
    "export_peel_chain_json",
    "export_tags_csv",
    "export_user_graph_graphml",
]

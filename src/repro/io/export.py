"""CSV / JSON exports of clusterings, tags, and flow analyses.

These are the artifacts a downstream investigator would hand to another
tool (a spreadsheet, a graph database, a subpoena exhibit): cluster
membership tables, tag lists, peel logs.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path

from ..analysis.peeling import PeelChain
from ..chain.model import format_btc
from ..core.clustering import Clustering
from ..tagging.tags import TagStore


def export_clusters_csv(
    clustering: Clustering,
    path: str | os.PathLike[str],
    *,
    name_of_cluster=None,
    min_size: int = 1,
) -> int:
    """Write ``address,cluster_id,cluster_size,name`` rows.

    Returns the number of rows written.  Cluster ids are the partition's
    canonical roots (dense interned address ids), which are stable for a
    given chain.
    """
    name_of_cluster = name_of_cluster or (lambda _root: None)
    rows = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["address", "cluster_id", "cluster_size", "name"])
        for root, members in sorted(
            clustering.clusters().items(), key=lambda kv: -len(kv[1])
        ):
            if len(members) < min_size:
                continue
            name = name_of_cluster(root) or ""
            for address in sorted(members):
                writer.writerow([address, root, len(members), name])
                rows += 1
    return rows


def export_tags_csv(tags: TagStore, path: str | os.PathLike[str]) -> int:
    """Write ``address,entity,source,confidence`` rows."""
    rows = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["address", "entity", "source", "confidence"])
        for tag in sorted(
            tags.all_tags(), key=lambda t: (t.entity, t.address, t.source)
        ):
            writer.writerow([tag.address, tag.entity, tag.source, tag.confidence])
            rows += 1
    return rows


def export_peel_chain_json(
    chain: PeelChain,
    path: str | os.PathLike[str],
    *,
    name_of_address=None,
) -> None:
    """Write one followed peel chain as a JSON document."""
    name_of_address = name_of_address or (lambda _a: None)
    doc = {
        "start_address": chain.start_address,
        "hop_count": chain.hop_count,
        "terminated": chain.terminated,
        "total_peeled_btc": format_btc(chain.total_peeled()),
        "hops": [
            {
                "hop": hop.hop,
                "txid": hop.txid[::-1].hex(),
                "height": hop.height,
                "kind": hop.kind,
                "change_address": hop.change_address,
                "remaining_btc": format_btc(hop.remaining_value),
                "peels": [
                    {
                        "address": peel.address,
                        "btc": format_btc(peel.value),
                        "entity": name_of_address(peel.address),
                    }
                    for peel in hop.peels
                ],
            }
            for hop in chain.hops
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2))


def export_naming_json(naming, path: str | os.PathLike[str]) -> None:
    """Write the named-cluster table as JSON."""
    report = naming.report()
    doc = {
        "named_cluster_count": report.named_cluster_count,
        "named_address_count": report.named_address_count,
        "amplification": report.amplification,
        "clusters": [
            {
                "name": cluster.name,
                "size": cluster.size,
                "tag_count": cluster.tag_count,
                "conflicts": list(cluster.conflicting_entities),
            }
            for cluster in naming.named_clusters()
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2))

"""GraphML export of the condensed user graph.

GraphML is what Gephi/Cytoscape/yEd consume, making the condensed graph
inspectable in standard network-visualization tools.  We delegate the
serialization to networkx but first normalize attributes (GraphML has no
``None``) and convert satoshi weights to BTC floats for readability.
"""

from __future__ import annotations

import os

import networkx as nx

from ..chain.model import COIN


def export_user_graph_graphml(
    graph: nx.DiGraph, path: str | os.PathLike[str], *, min_edge_value: int = 0
) -> nx.DiGraph:
    """Write a cleaned copy of the condensed graph to GraphML.

    Edges below ``min_edge_value`` satoshis are dropped (the full graph
    is dominated by dust-level flows).  Returns the cleaned copy.
    """
    cleaned = nx.DiGraph()
    for node, data in graph.nodes(data=True):
        cleaned.add_node(
            str(node),
            name=data.get("name") or "",
            size=int(data.get("size", 1)),
        )
    for source, target, data in graph.edges(data=True):
        if data.get("value", 0) < min_edge_value:
            continue
        cleaned.add_edge(
            str(source),
            str(target),
            btc=data["value"] / COIN,
            tx_count=int(data.get("tx_count", 1)),
        )
    nx.write_graphml(cleaned, path)
    return cleaned

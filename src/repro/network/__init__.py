"""P2P network substrate: the Figure 1 dissemination path.

Event-driven gossip simulation — transaction broadcast, flood relay,
mining, block relay — used to study confirmation latency and to ground
the economy's assumption that submitted transactions reach the next
block.
"""

from .node import Message, MinerNode, Node, P2PNetwork, PropagationLog
from .simulator import EventScheduler
from .topology import random_topology, scale_free_topology

__all__ = [
    "EventScheduler",
    "Message",
    "MinerNode",
    "Node",
    "P2PNetwork",
    "PropagationLog",
    "random_topology",
    "scale_free_topology",
]

"""Topology builders for the P2P substrate.

The 2012 Bitcoin network connected each node to 8 outbound peers chosen
roughly at random; :func:`random_topology` reproduces that degree
profile.  A scale-free option models supernodes (well-connected hosted
wallets and pool gateways).
"""

from __future__ import annotations

import random

import networkx as nx

from .node import P2PNetwork


def random_topology(
    n_nodes: int,
    *,
    degree: int = 8,
    n_miners: int = 4,
    seed: int = 0,
    latency_range: tuple[float, float] = (0.02, 0.35),
) -> P2PNetwork:
    """A connected random graph with ~``degree`` links per node."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    network = P2PNetwork(seed=seed)
    rng = random.Random(f"topology/{seed}")
    miner_ids = set(rng.sample(range(n_nodes), min(n_miners, n_nodes)))
    for i in range(n_nodes):
        network.add_node(miner=i in miner_ids)
    graph = nx.random_regular_graph(min(degree, n_nodes - 1), n_nodes, seed=seed)
    if not nx.is_connected(graph):
        components = list(nx.connected_components(graph))
        for a, b in zip(components, components[1:]):
            graph.add_edge(next(iter(a)), next(iter(b)))
    for a, b in graph.edges():
        network.link(a, b, latency=rng.uniform(*latency_range))
    return network


def scale_free_topology(
    n_nodes: int,
    *,
    attachment: int = 4,
    n_miners: int = 4,
    seed: int = 0,
    latency_range: tuple[float, float] = (0.02, 0.35),
) -> P2PNetwork:
    """A Barabási–Albert graph: a few supernodes, many leaves."""
    if n_nodes <= attachment:
        raise ValueError("n_nodes must exceed the attachment parameter")
    network = P2PNetwork(seed=seed)
    rng = random.Random(f"topology-sf/{seed}")
    miner_ids = set(rng.sample(range(n_nodes), min(n_miners, n_nodes)))
    for i in range(n_nodes):
        network.add_node(miner=i in miner_ids)
    graph = nx.barabasi_albert_graph(n_nodes, attachment, seed=seed)
    for a, b in graph.edges():
        network.link(a, b, latency=rng.uniform(*latency_range))
    return network

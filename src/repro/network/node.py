"""P2P nodes: inventory-based gossip relay and miners (Figure 1).

Reproduces the dissemination path the paper's Figure 1 narrates: a user
broadcasts a transaction to peers, it floods the network, a miner
incorporates it into a block, and the block floods back — at which point
the merchant considers itself paid.

The relay model is Bitcoin's in miniature: a node announces new
inventory to each peer after a per-link latency, and each item is
accepted only once (first-seen), so propagation takes the shape of a
breadth-first wave with random edge delays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .simulator import EventScheduler


@dataclass(frozen=True, slots=True)
class Message:
    """A relayed inventory item (transaction or block)."""

    kind: str  # "tx" | "block"
    item_id: bytes
    payload: object = None


@dataclass
class PropagationLog:
    """First-arrival times of items at nodes."""

    first_seen: dict[tuple[bytes, int], float] = field(default_factory=dict)

    def record(self, item_id: bytes, node_id: int, time: float) -> None:
        key = (item_id, node_id)
        if key not in self.first_seen:
            self.first_seen[key] = time

    def arrival_times(self, item_id: bytes) -> list[float]:
        """Sorted first-arrival times of one item across nodes."""
        return sorted(
            t for (iid, _node), t in self.first_seen.items() if iid == item_id
        )

    def coverage(self, item_id: bytes, n_nodes: int) -> float:
        """Fraction of nodes that have seen the item."""
        seen = sum(1 for (iid, _node) in self.first_seen if iid == item_id)
        return seen / n_nodes if n_nodes else 0.0

    def time_to_coverage(self, item_id: bytes, fraction: float, n_nodes: int) -> float | None:
        """Time at which ``fraction`` of nodes had the item (None if never)."""
        times = self.arrival_times(item_id)
        needed = int(n_nodes * fraction)
        if needed == 0 or len(times) < needed:
            return None
        origin = times[0]
        return times[needed - 1] - origin


class Node:
    """A relay node with first-seen inventory gossip."""

    def __init__(self, node_id: int, network: "P2PNetwork") -> None:
        self.node_id = node_id
        self.network = network
        self.peers: dict[int, float] = {}  # peer id -> latency seconds
        self.known: set[bytes] = set()
        self.mempool: dict[bytes, Message] = {}

    def connect(self, peer_id: int, latency: float) -> None:
        """Add a link to a peer with the given one-way latency."""
        if peer_id == self.node_id:
            raise ValueError("node cannot peer with itself")
        self.peers[peer_id] = latency

    def submit(self, message: Message) -> None:
        """Originate an item at this node (user broadcast, found block)."""
        self.receive(message)

    def receive(self, message: Message) -> None:
        """First-seen handling plus relay to peers."""
        if message.item_id in self.known:
            return
        self.known.add(message.item_id)
        self.network.log.record(
            message.item_id, self.node_id, self.network.scheduler.now
        )
        if message.kind == "tx":
            self.mempool[message.item_id] = message
        elif message.kind == "block":
            self.on_block(message)
        for peer_id, latency in self.peers.items():
            peer = self.network.nodes[peer_id]
            self.network.scheduler.schedule(
                latency, lambda p=peer, m=message: p.receive(m)
            )

    def on_block(self, message: Message) -> None:
        """Blocks confirm transactions: drop them from the mempool."""
        payload = message.payload
        if isinstance(payload, (list, tuple, set, frozenset)):
            for txid in payload:
                self.mempool.pop(txid, None)


class MinerNode(Node):
    """A node that assembles its mempool into blocks."""

    def __init__(self, node_id: int, network: "P2PNetwork") -> None:
        super().__init__(node_id, network)
        self.blocks_found = 0

    def find_block(self, block_id: bytes) -> list[bytes]:
        """'Solve' a block over the current mempool and broadcast it.

        Returns the txids included.  (Difficulty is outside the model;
        the caller schedules block discovery times.)
        """
        included = list(self.mempool)
        self.blocks_found += 1
        self.submit(Message(kind="block", item_id=block_id, payload=included))
        return included


class P2PNetwork:
    """A set of nodes plus the shared scheduler and propagation log."""

    def __init__(self, *, seed: int = 0) -> None:
        self.scheduler = EventScheduler()
        self.nodes: dict[int, Node] = {}
        self.log = PropagationLog()
        self.rng = random.Random(f"p2p/{seed}")

    def add_node(self, *, miner: bool = False) -> Node:
        """Create the next node (relay by default, miner on request)."""
        node_id = len(self.nodes)
        node = (MinerNode if miner else Node)(node_id, self)
        self.nodes[node_id] = node
        return node

    def link(self, a: int, b: int, *, latency: float | None = None) -> None:
        """Create a bidirectional link with symmetric latency."""
        if latency is None:
            latency = self.rng.uniform(0.01, 0.4)
        self.nodes[a].connect(b, latency)
        self.nodes[b].connect(a, latency)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def miners(self) -> list[MinerNode]:
        """All miner nodes."""
        return [n for n in self.nodes.values() if isinstance(n, MinerNode)]

    def broadcast_tx(self, origin: int, txid: bytes) -> None:
        """A user at ``origin`` broadcasts a transaction."""
        self.nodes[origin].submit(Message(kind="tx", item_id=txid))

    def run(self, seconds: float) -> None:
        """Advance the simulation."""
        self.scheduler.run_until(self.scheduler.now + seconds)

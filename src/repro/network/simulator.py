"""Event-driven network simulator core.

A minimal discrete-event engine: events are ``(time, seq, callback)``
triples in a heap; ``seq`` breaks ties deterministically so runs are
reproducible.  The P2P layer (:mod:`repro.network.node`) schedules
message deliveries through this engine.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)


class EventScheduler:
    """Deterministic discrete-event loop."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._seq = 0
        self._now = 0.0
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._queue, _Event(self._now + delay, self._seq, callback))

    def run_until(self, deadline: float) -> None:
        """Process events with time ≤ deadline."""
        while self._queue and self._queue[0].time <= deadline:
            event = heapq.heappop(self._queue)
            self._now = event.time
            self.events_processed += 1
            event.callback()
        self._now = max(self._now, deadline)

    def run_to_completion(self, *, max_events: int | None = None) -> None:
        """Drain the queue (optionally bounded)."""
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                return
            event = heapq.heappop(self._queue)
            self._now = event.time
            self.events_processed += 1
            processed += 1
            event.callback()

    @property
    def pending(self) -> int:
        return len(self._queue)

"""Evaluation metrics: clustering quality vs simulation ground truth."""

from .evaluation import (
    ClusteringComparison,
    EntityFragmentation,
    PairwiseScores,
    PurityScores,
    cluster_purity,
    compare_clusterings,
    entity_fragmentation,
    pairwise_scores,
)

__all__ = [
    "ClusteringComparison",
    "EntityFragmentation",
    "PairwiseScores",
    "PurityScores",
    "cluster_purity",
    "compare_clusterings",
    "entity_fragmentation",
    "pairwise_scores",
]

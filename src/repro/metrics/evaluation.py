"""Clustering quality metrics against simulation ground truth.

The paper could not measure clustering accuracy — it had no ground
truth.  The simulator does, so we report standard partition-comparison
metrics:

* **pairwise precision / recall / F1** — over pairs of addresses: a
  pair is a true positive when the clustering puts two same-owner
  addresses together.  Computed exactly via cluster-label contingency
  counts (no O(n²) pair enumeration).
* **per-entity fragmentation** — how many clusters one entity's
  addresses are scattered across (the paper's "20 Mt. Gox clusters"),
  and the largest cluster's share of the entity's addresses.
* **cluster purity** — whether clusters mix different owners.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from ..core.clustering import Clustering
from ..simulation.ground_truth import GroundTruth


@dataclass(frozen=True)
class PairwiseScores:
    """Pairwise precision/recall over a clustering vs ground truth."""

    true_pairs: int
    predicted_pairs: int
    correct_pairs: int

    @property
    def precision(self) -> float:
        """Of the pairs the clustering joined, how many share an owner."""
        if not self.predicted_pairs:
            return 1.0
        return self.correct_pairs / self.predicted_pairs

    @property
    def recall(self) -> float:
        """Of the pairs sharing an owner, how many the clustering joined."""
        if not self.true_pairs:
            return 1.0
        return self.correct_pairs / self.true_pairs

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)


@dataclass(frozen=True)
class EntityFragmentation:
    """How one entity's addresses are distributed over clusters."""

    entity: str
    address_count: int
    cluster_count: int
    largest_cluster_share: float


def _pairs(n: int) -> int:
    return n * (n - 1) // 2


def pairwise_scores(
    clustering: Clustering, ground_truth: GroundTruth
) -> PairwiseScores:
    """Exact pairwise scores via the cluster×owner contingency table."""
    cluster_sizes: Counter = Counter()
    owner_sizes: Counter = Counter()
    cell_sizes: Counter = Counter()
    for address in clustering.uf.iter_items():
        owner = ground_truth.owner_of(address)
        if owner is None:
            continue
        root = clustering.uf.find(address)
        cluster_sizes[root] += 1
        owner_sizes[owner] += 1
        cell_sizes[(root, owner)] += 1
    correct = sum(_pairs(n) for n in cell_sizes.values())
    predicted = sum(_pairs(n) for n in cluster_sizes.values())
    true = sum(_pairs(n) for n in owner_sizes.values())
    return PairwiseScores(
        true_pairs=true, predicted_pairs=predicted, correct_pairs=correct
    )


def entity_fragmentation(
    clustering: Clustering, ground_truth: GroundTruth, entity: str
) -> EntityFragmentation:
    """Fragmentation stats for one entity (paper: 20 Mt. Gox clusters)."""
    addresses = [
        a for a in ground_truth.addresses_of(entity) if a in clustering.uf
    ]
    per_cluster: Counter = Counter(clustering.uf.find(a) for a in addresses)
    largest = max(per_cluster.values(), default=0)
    return EntityFragmentation(
        entity=entity,
        address_count=len(addresses),
        cluster_count=len(per_cluster),
        largest_cluster_share=largest / len(addresses) if addresses else 0.0,
    )


@dataclass(frozen=True)
class PurityScores:
    """Owner purity of clusters (size-weighted)."""

    weighted_purity: float
    impure_clusters: int
    total_clusters: int


def cluster_purity(
    clustering: Clustering, ground_truth: GroundTruth
) -> PurityScores:
    """Size-weighted purity: the share of addresses whose cluster's
    majority owner matches their own owner."""
    owners_by_root: dict[object, Counter] = defaultdict(Counter)
    for address in clustering.uf.iter_items():
        owner = ground_truth.owner_of(address)
        if owner is None:
            continue
        owners_by_root[clustering.uf.find(address)][owner] += 1
    total = 0
    majority_total = 0
    impure = 0
    for counts in owners_by_root.values():
        size = sum(counts.values())
        top = counts.most_common(1)[0][1]
        total += size
        majority_total += top
        if len(counts) > 1:
            impure += 1
    return PurityScores(
        weighted_purity=majority_total / total if total else 1.0,
        impure_clusters=impure,
        total_clusters=len(owners_by_root),
    )


@dataclass(frozen=True)
class ClusteringComparison:
    """Side-by-side scores for two clusterings (e.g. H1 vs H1+H2)."""

    label_a: str
    label_b: str
    scores_a: PairwiseScores
    scores_b: PairwiseScores

    @property
    def recall_gain(self) -> float:
        """How much recall the second clustering adds."""
        return self.scores_b.recall - self.scores_a.recall

    @property
    def precision_cost(self) -> float:
        """How much precision the second clustering gives up."""
        return self.scores_a.precision - self.scores_b.precision


def compare_clusterings(
    clustering_a: Clustering,
    clustering_b: Clustering,
    ground_truth: GroundTruth,
    *,
    label_a: str = "a",
    label_b: str = "b",
) -> ClusteringComparison:
    """Score two clusterings against the same ground truth."""
    return ClusteringComparison(
        label_a=label_a,
        label_b=label_b,
        scores_a=pairwise_scores(clustering_a, ground_truth),
        scores_b=pairwise_scores(clustering_b, ground_truth),
    )

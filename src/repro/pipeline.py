"""The analyst pipeline: world → tags → clustering → naming in one call.

:class:`AnalystView` packages the paper's full methodology the way an
investigator would run it: collect tags (§3), cluster addresses (§4),
name clusters, and expose the flow-analysis tools (§5) pre-wired.  Every
example, bench, and integration test builds one of these.

The view is strictly *analyst-side*: it reads only the chain and the
tags; ground truth is used by callers for scoring, never by the view.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from .analysis.balances import BalanceAnalyzer, BalanceSeries
from .analysis.peeling import PeelingTracker
from .analysis.thefts import TheftTracker
from .analysis.user_graph import build_user_graph
from .core.clustering import Clustering, ClusteringEngine
from .core.fp_estimation import FalsePositiveEstimator
from .core.heuristic2 import Heuristic2Config, dice_addresses_from_tags
from .core.incremental import IncrementalClusteringEngine
from .service.service import ForensicsService
from .simulation.economy import World
from .simulation.params import DICE_GAMES, FIGURE2_CATEGORIES
from .tagging.naming import ClusterNaming
from .tagging.sources import PublicTagCrawl
from .tagging.tags import TagStore


@dataclass
class AnalystView:
    """Everything the analyst derives from one simulated world."""

    world: World
    tags: TagStore
    h2_config: Heuristic2Config

    @classmethod
    def build(
        cls,
        world: World,
        *,
        h2_config: Heuristic2Config | None = None,
        include_public_tags: bool = True,
        crawl_seed: int = 0,
    ) -> "AnalystView":
        """Assemble the view from a world's attack tags (+ public crawl)."""
        attack = world.extras.get("attack")
        tags = attack.tags if attack is not None else TagStore()
        if include_public_tags:
            tags = tags.merged_with(PublicTagCrawl(world, seed=crawl_seed).crawl())
        return cls(
            world=world,
            tags=tags,
            h2_config=h2_config or Heuristic2Config.refined(),
        )

    # ------------------------------------------------------------------
    # derived artifacts (cached)
    # ------------------------------------------------------------------

    @cached_property
    def dice_addresses(self) -> frozenset[str]:
        """Dice-game addresses per the analyst's tags (for the §4.2
        dice exception)."""
        return dice_addresses_from_tags(self.tags, DICE_GAMES)

    @cached_property
    def engine(self) -> ClusteringEngine:
        return ClusteringEngine(
            self.world.index,
            h2_config=self.h2_config,
            dice_addresses=self.dice_addresses,
        )

    @cached_property
    def incremental(self) -> IncrementalClusteringEngine:
        """Streaming engine over the world's chain: one pass, checkpoints
        at every height, ``cluster_as_of``/``snapshot`` time travel."""
        return IncrementalClusteringEngine(
            self.world.index,
            h2_config=self.h2_config,
            dice_addresses=self.dice_addresses,
        )

    @cached_property
    def service(self) -> ForensicsService:
        """The serving layer over this world's chain: incremental engine
        + materialized views + cached query API, pre-wired with the
        analyst's tags (thefts in the world's script are watched by
        :meth:`ForensicsService.from_world`; build directly when you
        need that)."""
        return ForensicsService(
            self.world.index,
            tags=self.tags,
            h2_config=self.h2_config,
            dice_addresses=self.dice_addresses,
        )

    @cached_property
    def clustering(self) -> Clustering:
        """H1 + configured H2 clustering of the whole chain."""
        return self.engine.cluster()

    @cached_property
    def clustering_h1(self) -> Clustering:
        """The Heuristic 1-only baseline."""
        return self.engine.cluster_h1_only()

    @cached_property
    def naming(self) -> ClusterNaming:
        """Tags propagated over the clustering."""
        return ClusterNaming(self.clustering, self.tags)

    @cached_property
    def known_service_names(self) -> set[str]:
        """Entities the analyst has tags for."""
        return self.tags.entities()

    @cached_property
    def _peel_naming_by_height(self) -> dict:
        """Memoized co-spend-only namings, keyed by horizon height."""
        return {}

    def peel_naming_as_of(self, height: int | None = None) -> ClusterNaming:
        """Tags propagated over the co-spend-only partition as of
        ``height`` (``None`` means the chain tip).

        Recipient naming deliberately excludes Heuristic 2: a peel
        output is, by the tracker's own classification, *not* the
        spender's change, so a change label claiming it (or bridging its
        owner's wallet into the spender's cluster) is contradictory
        evidence.  Every known peel mislabel traced back to exactly such
        a settled cross-party change link; co-spend unions cannot cross
        owners.  The horizon replays from the incremental engine's
        per-height checkpoints, so asking at many heights is cheap.
        """
        key = self.world.index.height if height is None else height
        naming = self._peel_naming_by_height.get(key)
        if naming is None:
            naming = ClusterNaming(
                self.incremental.cluster_h1_as_of(key), self.tags
            )
            self._peel_naming_by_height[key] = naming
        return naming

    def name_of_peel(self, peel) -> str | None:
        """Entity name for a peel recipient, or ``None`` when unnamed.

        Named from the co-spend partition as of the height the recipient
        spent the peel (the first on-chain evidence of ownership: the
        sweep co-spends it with the recipient's other deposits) —
        falling back to the analysis tip for still-unspent outputs.
        Naming from the tip *full* partition instead mislabeled ~15% of
        named peels: later change-heuristic false positives retroactively
        renamed past peels (see :meth:`peel_naming_as_of`).
        """
        naming = self.peel_naming_as_of(peel.spent_height)
        if peel.address_id >= 0:
            return naming.name_of_address_id(peel.address_id)
        return naming.name_of_address(peel.address)

    # ------------------------------------------------------------------
    # analysis tools, pre-wired
    # ------------------------------------------------------------------

    def peeling_tracker(self, **kwargs) -> PeelingTracker:
        """A §5 peeling tracker using this view's H2 configuration."""
        kwargs.setdefault("h2_config", self.h2_config)
        kwargs.setdefault("dice_addresses", self.dice_addresses)
        return PeelingTracker(self.world.index, **kwargs)

    def theft_tracker(self, **kwargs) -> TheftTracker:
        """A Table 3 theft tracker wired to this view's naming (the
        id-keyed fast path; strings only at the reporting edge).  A
        caller-supplied ``name_of_address`` takes over completely — the
        id fast path is only injected alongside our own naming, since
        the tracker prefers ``name_of_id`` whenever it is set."""
        if "name_of_address" not in kwargs:
            kwargs.setdefault("name_of_address", self.naming.name_of_address)
            kwargs.setdefault("name_of_id", self.naming.name_of_address_id)
        kwargs.setdefault("h2_config", self.h2_config)
        kwargs.setdefault("dice_addresses", self.dice_addresses)
        return TheftTracker(self.world.index, **kwargs)

    def fp_estimator(self, *, with_ground_truth: bool = True) -> FalsePositiveEstimator:
        """The §4.2 temporal false-positive estimator."""
        return FalsePositiveEstimator(
            self.world.index,
            dice_addresses=self.dice_addresses,
            ground_truth=self.world.ground_truth if with_ground_truth else None,
        )

    def balance_series(
        self, *, samples: int = 60, streaming: bool = False
    ) -> BalanceSeries:
        """Figure 2's category balance series, from the analyst's view.

        ``streaming=True`` replays the serving layer's warm
        :class:`~repro.service.views.BalanceView` event log instead of
        re-walking the chain (identical output, property-tested).
        """
        categories = {
            entity: self.world.ground_truth.category_of(entity)
            for entity in self.known_service_names
        }
        analyzer = BalanceAnalyzer(
            self.world.index,
            name_of_address=self.naming.name_of_address,
            category_of_entity=lambda entity: categories.get(entity),
            categories=FIGURE2_CATEGORIES,
            view=self.service.balances if streaming else None,
        )
        return analyzer.series(samples=samples)

    def user_graph(self):
        """The condensed user/service graph."""
        return build_user_graph(
            self.world.index,
            self.clustering,
            name_of_cluster=self.naming.name_of_cluster,
        )

    def entities_in_category(self, category: str) -> set[str]:
        """Tagged entities belonging to one service category.

        Category membership comes from the world's entity registry (the
        analyst knows what kind of business each *named* service is —
        that is public knowledge, not chain data).
        """
        return {
            entity
            for entity in self.known_service_names
            if self.world.ground_truth.category_of(entity) == category
        }

"""What the paper could not measure: true clustering accuracy.

The authors estimated Heuristic 2's false-positive rate by replaying
time; with a simulator we hold the answer key.  This example runs the
refinement ablation, compares the temporal estimate to the truth, and
demonstrates §6's idiom-drift concern by sweeping wallet change
policies.

Run:  python examples/clustering_accuracy.py   (takes ~30s)
"""

from dataclasses import replace

from repro.core.clustering import ClusteringEngine
from repro.experiments import run_ablation, run_fp_ladder
from repro.metrics.evaluation import pairwise_scores
from repro.simulation import scenarios
from repro.simulation.params import ChangePolicy, EconomyParams, UserParams


def main() -> None:
    print("building the default economy...")
    world = scenarios.default_economy(seed=0)

    print("\n--- §4.2: estimated vs true false-positive rates ---")
    ladder = run_fp_ladder(world)
    print(ladder.report)

    print("\n--- ablation: what each refinement buys ---")
    ablation = run_ablation(world)
    print(ablation.report)

    print("\n--- §6: idiom drift (how H2 degrades as habits change) ---")
    policies = [
        ("2012 defaults", ChangePolicy()),
        ("all fresh change",
         ChangePolicy(fresh=1.0, self_change=0.0, reuse=0.0, recent=0.0)),
        ("privacy-conscious (all self-change)",
         ChangePolicy(fresh=0.0, self_change=1.0, reuse=0.0, recent=0.0)),
        ("sloppy (heavy reuse)",
         ChangePolicy(fresh=0.4, self_change=0.2, reuse=0.2, recent=0.2)),
    ]
    print(f"{'policy':38s} {'labels':>7s} {'precision':>10s} {'recall':>7s}")
    for name, policy in policies:
        params = EconomyParams(
            seed=13, n_blocks=200, n_users=16,
            user=UserParams(change_policy=policy),
        )
        drift_world = scenarios.default_economy(
            seed=13, params=params, with_attack=False
        )
        clustering = ClusteringEngine(drift_world.index).cluster()
        scores = pairwise_scores(clustering, drift_world.ground_truth)
        labels = len(clustering.h2_result.labels)
        print(f"{name:38s} {labels:7d} {scores.precision:10.3f} "
              f"{scores.recall:7.3f}")
    print(
        "\nConclusion (matching §6): universal self-change would thwart the\n"
        "heuristic entirely, but costs usability — and nobody but the most\n"
        "motivated users paid that cost in 2013."
    )


if __name__ == "__main__":
    main()

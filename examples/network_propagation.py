"""Figure 1 in motion: how a payment disseminates through the P2P net.

A user broadcasts a transaction; it floods peer-to-peer; a miner
incorporates it into a block; the block floods back; the merchant is
paid.  This example measures propagation and confirmation latencies on
a 2012-scale random topology.

Run:  python examples/network_propagation.py
"""

import statistics

from repro.network.node import Message
from repro.network.topology import random_topology


def main() -> None:
    network = random_topology(200, degree=8, n_miners=5, seed=11)
    print(f"network: {network.node_count} nodes, "
          f"{len(network.miners())} miners")

    # (3)-(4): the user forms a transaction and broadcasts it.
    user_node = 0
    txid = b"payment-tx"
    network.broadcast_tx(user_node, txid)
    network.run(5.0)

    times = network.log.arrival_times(txid)
    origin = times[0]
    relative = [t - origin for t in times]
    print(
        f"\ntransaction propagation across {len(times)} nodes:"
        f"\n  median {statistics.median(relative)*1000:.0f} ms"
        f"\n  p90    {sorted(relative)[int(len(relative)*0.9)]*1000:.0f} ms"
        f"\n  max    {max(relative)*1000:.0f} ms"
    )
    half = network.log.time_to_coverage(txid, 0.5, network.node_count)
    full = network.log.time_to_coverage(txid, 1.0, network.node_count)
    print(f"  50% coverage in {half*1000:.0f} ms, 100% in {full*1000:.0f} ms")

    # (5): a miner finds a block containing the transaction.
    miner = network.miners()[0]
    assert txid in miner.mempool, "tx should have reached the miner"
    included = miner.find_block(b"block-1")
    print(f"\nminer {miner.node_id} found a block with "
          f"{len(included)} transaction(s)")

    # (6): the block floods; the merchant sees the confirmation.
    network.run(5.0)
    block_times = network.log.arrival_times(b"block-1")
    merchant_node = network.node_count - 1
    merchant = network.nodes[merchant_node]
    confirmed = txid not in merchant.mempool
    print(
        f"block reached {len(block_times)} nodes; "
        f"merchant node {merchant_node} sees the payment confirmed: {confirmed}"
    )


if __name__ == "__main__":
    main()

"""Track the seven Table 3 thefts: movement grammars and exchange reach.

For each theft the tracker recovers, from the chain alone, how the loot
moved (A=aggregation, P=peeling chain, S=split, F=folding) and whether
any of it reached a known exchange; a taint pass then quantifies how
much value leaked to each named service even through folds and splits.

Run:  python examples/theft_forensics.py   (takes ~1 minute)
"""

from repro.analysis.taint import TaintTracker
from repro.chain.model import COIN, OutPoint
from repro.pipeline import AnalystView
from repro.simulation import scenarios


def main() -> None:
    print("simulating the theft world (seven thefts, ~2 years)...")
    world = scenarios.theft_world(seed=2)
    view = AnalystView.build(world)
    tracker = view.theft_tracker()
    exchange_names = view.entities_in_category("exchanges") | (
        view.entities_in_category("fixed")
    )

    print(f"\n{'Theft':18s} {'paper':8s} {'recovered':10s} {'exch BTC':>9s} "
          f"{'dormant':>9s}")
    for theft in world.extras["thefts"]:
        record = theft.record
        analysis = tracker.track(record.theft_txids)
        exchange_value = analysis.value_to(exchange_names) / COIN
        print(
            f"{record.spec.name:18s} {record.spec.movement:8s} "
            f"{analysis.movement or '(sat still)':10s} "
            f"{exchange_value:9.2f} {analysis.dormant_value / COIN:9.2f}"
        )

    # Deep dive: Betcoin, the paper's cleanest case.  The loot sat for a
    # year, then aggregated and peeled; exchange deposits appeared
    # within tens of hops.
    betcoin = next(
        t for t in world.extras["thefts"] if t.spec.name == "Betcoin"
    )
    analysis = tracker.track(betcoin.record.theft_txids)
    print("\nBetcoin case study:")
    for hit in analysis.hits_to(exchange_names):
        print(
            f"  {hit.value / COIN:8.2f} BTC reached {hit.entity} "
            f"at height {hit.height}"
        )

    # Taint analysis (beyond the paper): value-proportional tracking
    # through folds and splits.
    index = world.index
    sources = []
    for txid in betcoin.record.theft_txids:
        tx = index.tx(txid)
        sources.extend(OutPoint(txid, v) for v in range(len(tx.outputs)))
    taint = TaintTracker(
        index, name_of_address=view.naming.name_of_address
    ).propagate(sources)
    print("\ntaint reach (haircut accounting):")
    for entity, value in sorted(
        taint.taint_at_entities.items(), key=lambda kv: -kv[1]
    )[:8]:
        print(f"  {entity:20s} {value / COIN:10.3f} BTC-equivalent taint")


if __name__ == "__main__":
    main()

"""Follow the Silk Road hoard's dissolution (the paper's §5 headline).

Recreates the 1DkyBEKt story: a famous address accumulates a huge
balance through aggregate deposits, dissolves it, and the remainder
feeds three peeling chains.  We follow each chain hop by hop with
Heuristic 2, name the peel recipients, and write the chains to JSON.

Run:  python examples/track_silkroad.py
"""

from pathlib import Path

from repro.chain.model import format_btc
from repro.io.export import export_peel_chain_json
from repro.analysis.peeling import summarize_peels_by_entity
from repro.pipeline import AnalystView
from repro.simulation import scenarios

OUT_DIR = Path("out/silkroad")


def main() -> None:
    print("simulating the Silk Road world (this takes ~20s)...")
    world = scenarios.silkroad_world(seed=1, n_blocks=1200)
    hoard = world.extras["hoard"]
    index = world.index

    record = index.address(hoard.state.hoard_address)
    print(
        f"\nhoard address {hoard.state.hoard_address}\n"
        f"  received {format_btc(record.total_received)} BTC over "
        f"{len(record.receives)} deposits "
        f"(paper: 613,326 BTC — amounts scaled x0.01)\n"
        f"  final balance: {format_btc(record.balance)} BTC (fully dissolved)"
    )

    view = AnalystView.build(world)
    tracker = view.peeling_tracker()
    OUT_DIR.mkdir(parents=True, exist_ok=True)

    grand_totals: dict[str, int] = {}
    for i, head in enumerate(hoard.state.chain_start_addresses, start=1):
        chain = tracker.follow_address(head, max_hops=100)
        summary = summarize_peels_by_entity(chain, view.naming.name_of_address)
        known = {
            name: entry
            for name, entry in summary.items()
            if not name.startswith("user") and name != "analyst"
        }
        print(
            f"\nchain {i}: {chain.hop_count} hops, "
            f"{len(chain.peels)} peels, terminated: {chain.terminated}"
        )
        for name, entry in sorted(known.items(), key=lambda kv: -kv[1].total_value):
            print(
                f"   {name:20s} {entry.peel_count:3d} peels  "
                f"{format_btc(entry.total_value):>14s} BTC"
            )
            grand_totals[name] = grand_totals.get(name, 0) + entry.peel_count
        path = OUT_DIR / f"chain{i}.json"
        export_peel_chain_json(chain, path, name_of_address=view.naming.name_of_address)
        print(f"   wrote {path}")

    exchanges = view.entities_in_category("exchanges")
    exchange_peels = sum(n for name, n in grand_totals.items() if name in exchanges)
    print(
        f"\npeels to known exchanges: {exchange_peels} "
        f"(paper: 54 of 300) — each one a subpoena opportunity"
    )


if __name__ == "__main__":
    main()

"""Quickstart: simulate a small Bitcoin economy, cluster it, name the
players, and see how far a handful of tags reaches.

Run:  python examples/quickstart.py
"""

from repro.chain.model import format_btc
from repro.chain.validation import validate_chain
from repro.core.heuristic1 import h1_statistics
from repro.pipeline import AnalystView
from repro.simulation import scenarios


def main() -> None:
    # 1. A synthetic world: mining pools, exchanges, a dice game, users.
    world = scenarios.micro_economy(seed=7, n_blocks=200, n_users=15)
    index = world.index
    print(
        f"simulated {len(world.blocks)} blocks, {index.tx_count} transactions, "
        f"{index.address_count} addresses"
    )
    report = validate_chain(world.blocks)
    print(f"chain valid: {report.ok} "
          f"(subsidy {format_btc(report.total_subsidy)} BTC, "
          f"fees {format_btc(report.total_fees)} BTC)")

    # 2. The analyst pipeline: tags (from the in-world re-identification
    #    attack) + clustering (Heuristic 1 + refined Heuristic 2).
    view = AnalystView.build(world)
    h1 = h1_statistics(index, view.clustering_h1.uf)
    print(f"\nHeuristic 1: {h1.spender_clusters} co-spend clusters, "
          f"{h1.sink_addresses} sinks "
          f"-> at most {h1.max_users_upper_bound} users")
    clustering = view.clustering
    print(f"Heuristic 1+2: {clustering.cluster_count} clusters "
          f"({len(clustering.h2_result.labels)} change addresses identified)")

    # 3. Naming: one tag anywhere in a cluster names the whole cluster.
    naming_report = view.naming.report()
    print(
        f"\ntags: {naming_report.hand_tagged_address_count} hand-tagged "
        f"addresses name {naming_report.named_address_count} addresses "
        f"across {naming_report.named_cluster_count} clusters "
        f"(x{naming_report.amplification:.1f} amplification)"
    )
    print("\nbiggest named clusters:")
    for cluster in view.naming.named_clusters()[:8]:
        print(f"  {cluster.name:20s} {cluster.size:5d} addresses")

    # 4. Because this is a simulation, we can score the result.
    from repro.metrics.evaluation import pairwise_scores

    scores = pairwise_scores(clustering, world.ground_truth)
    print(
        f"\nclustering vs ground truth: precision {scores.precision:.3f}, "
        f"recall {scores.recall:.3f}, F1 {scores.f1:.3f}"
    )


if __name__ == "__main__":
    main()
